//! Ordered, navigation-based query evaluation — the engine behind the
//! reverse axes (`parent`, `ancestor`, `ancestor-or-self`,
//! `preceding-sibling`, `preceding`), the `following` axis and the
//! positional predicates `[n]` / `[position() op n]` / `[last()]`.
//!
//! The tree automata of [`crate::eval`] process the document in one forward
//! pass and accumulate *sets* of result nodes; that is exactly why they are
//! fast, and exactly why they cannot express positional predicates (which
//! need the per-context *sequence* a step selects) or reverse axes (which
//! walk against the first-child/next-sibling grain).  This module is the
//! other half of the evaluation contract: a direct evaluator over the BP
//! tree's full navigation (`parent`, `prev_sibling`, subtree ranges) that
//! materializes each step's selection *per context node, in axis order* —
//! document order for forward axes, reverse document order for reverse axes
//! — so positional predicates index the exact sequence XPath prescribes.
//!
//! The `SxsiIndex` planner first tries to rewrite a query into the forward
//! fragment ([`crate::rewrite`]); only queries that remain outside it are
//! evaluated here.  Results are always returned deduplicated in document
//! order, like every other strategy.
//!
//! Model-specific semantics (shared with the naive baseline oracle):
//!
//! * the synthetic super-root `&` is never selectable by any node test;
//! * the attribute encoding (`@` containers, attribute-name nodes, `%`
//!   value leaves) is invisible to every axis except `attribute::` —
//!   `descendant`, `following` and `preceding` skip `@` subtrees, and
//!   `parent`/`ancestor` step over the `@` container so the parent of an
//!   attribute node is its owning element.

use crate::ast::{Axis, NodeTest, Path, Predicate, Query, Step};
use crate::eval::Output;
use sxsi_text::TextCollection;
use sxsi_tree::{reserved, NodeId, XmlTree};

/// Evaluates queries by direct tree navigation with XPath's ordered,
/// per-context semantics.
pub struct DirectEvaluator<'a> {
    tree: &'a XmlTree,
    texts: Option<&'a TextCollection>,
}

/// A node test with the tag name resolved to its id once per step, so the
/// document-scale scans compare ids instead of hashing strings per node.
enum ResolvedTest {
    /// A name test; `None` when the name does not occur in the document.
    Name(Option<sxsi_tree::TagId>),
    /// `*`
    Wildcard,
    /// `text()`
    Text,
    /// `node()`
    Node,
}

impl<'a> DirectEvaluator<'a> {
    /// Creates an evaluator.  `texts` may be `None` for purely structural
    /// queries; evaluating a text predicate without a text collection
    /// panics.
    pub fn new(tree: &'a XmlTree, texts: Option<&'a TextCollection>) -> Self {
        Self { tree, texts }
    }

    /// Runs the query and returns the selected nodes in document order.
    pub fn evaluate(&self, query: &Query) -> Vec<NodeId> {
        self.eval_steps(&[self.tree.root()], &query.path.steps)
    }

    /// Number of nodes selected by the query.
    pub fn count(&self, query: &Query) -> u64 {
        self.evaluate(query).len() as u64
    }

    /// Runs the query in the requested mode.
    pub fn run(&self, query: &Query, counting: bool) -> Output {
        if counting {
            Output::Count(self.count(query))
        } else {
            Output::Nodes(self.evaluate(query))
        }
    }

    // -----------------------------------------------------------------
    // Step evaluation
    // -----------------------------------------------------------------

    /// Evaluates a chain of steps from a sorted, deduplicated context set;
    /// the result is again sorted and deduplicated (document order).
    fn eval_steps(&self, context: &[NodeId], steps: &[Step]) -> Vec<NodeId> {
        let mut context = context.to_vec();
        for step in steps {
            let mut out = Vec::new();
            let positional = step.predicates.iter().any(Predicate::uses_position);
            if !positional
                && matches!(step.axis, Axis::Following | Axis::Preceding)
                && context.len() > 1
            {
                // Union fast path: `following` of a context set is everything
                // after the earliest subtree end, `preceding` everything that
                // closes before the latest context start — one scan instead
                // of one scan per context node.  Only valid without
                // positional predicates (positions are per context node).
                out = self.ordered_axis_union(&context, step.axis, &step.test);
                out.retain(|&n| {
                    step.predicates.iter().all(|p| self.eval_predicate(n, p, 1, 1))
                });
            } else {
                for &node in &context {
                    let mut candidates = self.axis_nodes(node, step.axis, &step.test);
                    for pred in &step.predicates {
                        let last = candidates.len();
                        let mut kept = Vec::with_capacity(candidates.len());
                        for (i, &cand) in candidates.iter().enumerate() {
                            if self.eval_predicate(cand, pred, i + 1, last) {
                                kept.push(cand);
                            }
                        }
                        candidates = kept;
                    }
                    out.extend(candidates);
                }
            }
            out.sort_unstable();
            out.dedup();
            context = out;
            if context.is_empty() {
                break;
            }
        }
        context
    }

    /// The nodes a step's axis + node test select from one context node, in
    /// axis order (document order for forward axes, reverse document order
    /// for reverse axes).
    fn axis_nodes(&self, node: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        let tree = self.tree;
        // Resolve the tag name against the registry once — the loops below
        // visit up to the whole document, and a per-node HashMap lookup of
        // a constant name would dominate the scans.
        let test = self.resolve(test);
        let test = &test;
        let mut out = Vec::new();
        match axis {
            Axis::Child => {
                for c in tree.children(node) {
                    if self.matches(c, test) {
                        out.push(c);
                    }
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                if axis == Axis::DescendantOrSelf && self.matches(node, test) {
                    out.push(node);
                }
                // Descendants are exactly the nodes opening inside this
                // node's parenthesis range; the iterative scan (unlike a
                // per-level recursion) cannot overflow the stack on deeply
                // nested documents.
                self.scan_range(node + 1, tree.close(node), usize::MAX, test, &mut out);
            }
            Axis::SelfAxis => {
                if self.matches(node, test) {
                    out.push(node);
                }
            }
            Axis::Attribute => {
                for c in tree.children(node) {
                    if tree.tag(c) == reserved::ATTRIBUTES {
                        for attr in tree.children(c) {
                            let name_matches = match test {
                                ResolvedTest::Wildcard | ResolvedTest::Node => true,
                                ResolvedTest::Name(id) => *id == Some(tree.tag(attr)),
                                ResolvedTest::Text => false,
                            };
                            if name_matches {
                                out.push(attr);
                            }
                        }
                    }
                }
            }
            Axis::FollowingSibling => {
                let mut cur = tree.next_sibling(node);
                while let Some(s) = cur {
                    if self.matches(s, test) {
                        out.push(s);
                    }
                    cur = tree.next_sibling(s);
                }
            }
            Axis::PrecedingSibling => {
                let mut cur = tree.prev_sibling(node);
                while let Some(s) = cur {
                    if self.matches(s, test) {
                        out.push(s);
                    }
                    cur = tree.prev_sibling(s);
                }
            }
            Axis::Parent => {
                if let Some(p) = self.parent_element(node) {
                    if self.matches(p, test) {
                        out.push(p);
                    }
                }
            }
            Axis::Ancestor => {
                let mut cur = self.parent_element(node);
                while let Some(p) = cur {
                    if self.matches(p, test) {
                        out.push(p);
                    }
                    cur = self.parent_element(p);
                }
            }
            Axis::AncestorOrSelf => {
                if self.matches(node, test) {
                    out.push(node);
                }
                let mut cur = self.parent_element(node);
                while let Some(p) = cur {
                    if self.matches(p, test) {
                        out.push(p);
                    }
                    cur = self.parent_element(p);
                }
            }
            Axis::Following => {
                self.scan_range(self.following_start(node), usize::MAX, usize::MAX, test, &mut out);
            }
            Axis::Preceding => {
                // Nodes whose subtree closes before `node` opens; ancestors
                // close later and are therefore excluded automatically.
                self.scan_range(1, node, node, test, &mut out);
                out.reverse();
            }
        }
        out
    }

    /// Union evaluation of `following`/`preceding` over a whole (sorted)
    /// context set: both axes are monotone in the context node, so the union
    /// is a single contiguous condition.
    fn ordered_axis_union(&self, context: &[NodeId], axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        let test = &self.resolve(test);
        let mut out = Vec::new();
        match axis {
            Axis::Following => {
                let from =
                    context.iter().map(|&x| self.following_start(x)).min().expect("non-empty");
                self.scan_range(from, usize::MAX, usize::MAX, test, &mut out);
            }
            Axis::Preceding => {
                let max_open = *context.last().expect("non-empty");
                self.scan_range(1, max_open, max_open, test, &mut out);
            }
            _ => unreachable!("union evaluation only covers following/preceding"),
        }
        out
    }

    /// Where the `following` scan of `node` starts.  Normally just past the
    /// node's subtree — but when the context node sits *inside* an `@`
    /// attribute container (an attribute-name or `%` value node), starting
    /// there would expose the container's remaining attribute siblings: the
    /// scan's container-skip only triggers on a container's opening
    /// parenthesis, which lies before the start.  Jump past the enclosing
    /// container instead (its following region equals the attribute's).
    fn following_start(&self, node: NodeId) -> usize {
        let mut start = self.tree.close(node) + 1;
        let mut cur = self.tree.parent(node);
        while let Some(p) = cur {
            if self.tree.tag(p) == reserved::ATTRIBUTES {
                start = start.max(self.tree.close(p) + 1);
            }
            cur = self.tree.parent(p);
        }
        start
    }

    /// Collects, in document order, every node whose opening parenthesis
    /// lies in `[from, to)` and whose subtree closes before `close_before`,
    /// skipping attribute-encoding subtrees.
    fn scan_range(
        &self,
        from: usize,
        to: usize,
        close_before: usize,
        test: &ResolvedTest,
        out: &mut Vec<NodeId>,
    ) {
        let tree = self.tree;
        let end = to.min(2 * tree.num_nodes());
        let mut pos = from;
        while pos < end {
            if !tree.is_node(pos) {
                pos += 1;
                continue;
            }
            if tree.tag(pos) == reserved::ATTRIBUTES {
                pos = tree.close(pos) + 1;
                continue;
            }
            if tree.close(pos) < close_before && self.matches(pos, test) {
                out.push(pos);
            }
            pos += 1;
        }
    }

    /// The parent for XPath purposes: steps over the `@` container so the
    /// parent of an attribute node is its owning element.
    fn parent_element(&self, x: NodeId) -> Option<NodeId> {
        let p = self.tree.parent(x)?;
        if self.tree.tag(p) == reserved::ATTRIBUTES {
            self.tree.parent(p)
        } else {
            Some(p)
        }
    }

    /// Resolves a node test against the document's tag registry so the
    /// evaluation loops compare tag ids instead of hashing names.
    fn resolve(&self, test: &NodeTest) -> ResolvedTest {
        match test {
            NodeTest::Wildcard => ResolvedTest::Wildcard,
            NodeTest::Name(name) => ResolvedTest::Name(self.tree.tag_id(name)),
            NodeTest::Text => ResolvedTest::Text,
            NodeTest::Node => ResolvedTest::Node,
        }
    }

    fn matches(&self, node: NodeId, test: &ResolvedTest) -> bool {
        let tag = self.tree.tag(node);
        match test {
            ResolvedTest::Wildcard => {
                tag != reserved::ROOT
                    && tag != reserved::TEXT
                    && tag != reserved::ATTRIBUTES
                    && tag != reserved::ATTRIBUTE_VALUE
            }
            ResolvedTest::Name(id) => *id == Some(tag),
            ResolvedTest::Text => tag == reserved::TEXT,
            ResolvedTest::Node => {
                tag != reserved::ROOT
                    && tag != reserved::ATTRIBUTES
                    && tag != reserved::ATTRIBUTE_VALUE
            }
        }
    }

    // -----------------------------------------------------------------
    // Predicates
    // -----------------------------------------------------------------

    /// Evaluates a filter on `node`, which sits at 1-based `position` of a
    /// selection of `last` nodes (axis order).
    fn eval_predicate(&self, node: NodeId, pred: &Predicate, position: usize, last: usize) -> bool {
        match pred {
            Predicate::And(a, b) => {
                self.eval_predicate(node, a, position, last)
                    && self.eval_predicate(node, b, position, last)
            }
            Predicate::Or(a, b) => {
                self.eval_predicate(node, a, position, last)
                    || self.eval_predicate(node, b, position, last)
            }
            Predicate::Not(p) => !self.eval_predicate(node, p, position, last),
            Predicate::Position(p) => p.matches(position, last),
            Predicate::Exists(path) => !self.eval_relative(node, path).is_empty(),
            Predicate::TextCompare { path, op } => {
                self.eval_relative(node, path).iter().any(|&n| self.text_matches(n, op))
            }
        }
    }

    fn eval_relative(&self, node: NodeId, path: &Path) -> Vec<NodeId> {
        debug_assert!(!path.absolute, "filter paths are relative");
        self.eval_steps(&[node], &path.steps)
    }

    fn text_matches(&self, node: NodeId, op: &sxsi_text::TextPredicate) -> bool {
        let texts = self.texts.expect("text predicates require a text collection");
        let ids = self.tree.string_value_texts(node);
        let mut value = Vec::new();
        for t in ids {
            value.extend_from_slice(&texts.get_text(t));
        }
        op.matches_value(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use sxsi_text::TextCollection;
    use sxsi_xml::parse_document;

    const DOC: &str = r#"<site>
  <regions>
    <africa><item id="i1"><name>drum</name><description>
      <parlist><listitem><text>a <keyword>rare</keyword> drum <emph>loud</emph></text></listitem>
      <listitem><keyword>old</keyword></listitem></parlist>
    </description></item></africa>
    <europe><item id="i2"><name>violin</name><description>classic string instrument</description></item></europe>
  </regions>
  <people>
    <person id="p1"><name>Alice</name><address>Oak street</address><phone>123</phone></person>
    <person id="p2"><name>Bob</name><homepage>http://b.example</homepage></person>
    <person id="p3"><name>Eve</name><phone>456</phone></person>
  </people>
</site>"#;

    struct Fixture {
        tree: sxsi_tree::XmlTree,
        texts: TextCollection,
    }

    fn fixture() -> Fixture {
        let doc = parse_document(DOC.as_bytes()).unwrap();
        let texts = TextCollection::new(&doc.text_slices());
        Fixture { tree: doc.tree, texts }
    }

    fn count(f: &Fixture, query: &str) -> u64 {
        let q = parse_query(query).unwrap();
        DirectEvaluator::new(&f.tree, Some(&f.texts)).count(&q)
    }

    fn names(f: &Fixture, query: &str) -> Vec<String> {
        let q = parse_query(query).unwrap();
        DirectEvaluator::new(&f.tree, Some(&f.texts))
            .evaluate(&q)
            .into_iter()
            .map(|n| f.tree.tag_name(f.tree.tag(n)).to_string())
            .collect()
    }

    #[test]
    fn forward_axes_match_expected_counts() {
        let f = fixture();
        assert_eq!(count(&f, "//keyword"), 2);
        assert_eq!(count(&f, "/site/regions/*/item"), 2);
        assert_eq!(count(&f, "//person[phone]"), 2);
        assert_eq!(count(&f, r#"//person[ .//name[ . = "Alice" ] ]"#), 1);
        assert_eq!(count(&f, "//item/@id"), 2);
    }

    #[test]
    fn parent_and_ancestor() {
        let f = fixture();
        assert_eq!(count(&f, "//keyword/parent::listitem"), 1);
        assert_eq!(count(&f, "//keyword/.."), 2); // text + listitem parents
        assert_eq!(count(&f, "//keyword/ancestor::item"), 1);
        // keyword "rare": text, listitem, parlist, description, item,
        // africa, regions, site; keyword "old" adds its own listitem.
        assert_eq!(count(&f, "//keyword/ancestor::*"), 9);
        assert_eq!(count(&f, "//name/ancestor-or-self::name"), 5);
        // Parent of an attribute node is its element (the @ container is
        // invisible).
        assert_eq!(count(&f, "//@id/parent::person"), 3);
        assert_eq!(count(&f, "//@id/.."), 5);
        // The super-root is never selectable.
        assert_eq!(count(&f, "/site/.."), 0);
        assert_eq!(count(&f, "/site/ancestor::*"), 0);
    }

    #[test]
    fn sibling_axes() {
        let f = fixture();
        assert_eq!(count(&f, "//address/preceding-sibling::name"), 1);
        assert_eq!(count(&f, "//address/following-sibling::phone"), 1);
        assert_eq!(count(&f, "//person/preceding-sibling::person"), 2);
        // Nearest-first ordering: [1] is the immediately preceding sibling.
        assert_eq!(names(&f, "//phone/preceding-sibling::*[1]"), ["address", "name"]);
    }

    #[test]
    fn following_and_preceding() {
        let f = fixture();
        // africa's following: europe subtree + people subtree contents.
        assert_eq!(count(&f, "//africa/following::item"), 1);
        assert_eq!(count(&f, "//europe/preceding::keyword"), 2);
        // preceding excludes ancestors.
        assert_eq!(count(&f, "//keyword/preceding::regions"), 0);
        // following/preceding never see the attribute encoding.
        assert_eq!(count(&f, "//africa/following::id"), 0);
        // Union fast path agrees with per-context evaluation.
        assert_eq!(count(&f, "//person/preceding::item"), 2);
        assert_eq!(count(&f, "//item/following::person"), 3);
    }

    #[test]
    fn following_from_attribute_context_skips_sibling_attributes() {
        // The scan starts inside the @ container here; it must not expose
        // the remaining attribute-name nodes of the same element.
        let doc = r#"<a><b id="1" name="n" class="c"><x/></b><c/></a>"#;
        let parsed = sxsi_xml::parse_document(doc.as_bytes()).unwrap();
        let texts = TextCollection::new(&parsed.text_slices());
        let f = Fixture { tree: parsed.tree, texts };
        assert_eq!(names(&f, "//@id/following::*"), ["x", "c"]);
        assert_eq!(names(&f, "//@name/following::*"), ["x", "c"]);
        // Union fast path (context of two attribute nodes) agrees.
        assert_eq!(names(&f, "//b/@*/following::*"), ["x", "c"]);
        // And preceding from an attribute context stays clean too.
        assert_eq!(names(&f, "//c/preceding::*"), ["b", "x"]);
        assert_eq!(count(&f, "//@class/preceding::x"), 0);
    }

    #[test]
    fn positional_predicates() {
        let f = fixture();
        assert_eq!(names(&f, "/site/people/person[1]/name"), ["name"]);
        assert_eq!(count(&f, "/site/people/person[2]"), 1);
        assert_eq!(count(&f, "/site/people/person[last()]"), 1);
        assert_eq!(count(&f, "/site/people/person[position() <= 2]"), 2);
        assert_eq!(count(&f, "/site/people/person[position() > 1]"), 2);
        assert_eq!(count(&f, "/site/people/person[position() != 2]"), 2);
        assert_eq!(count(&f, "/site/people/person[7]"), 0);
        // Positions re-index after each predicate: the 2nd person with a
        // phone is Eve, not Bob.
        let q = parse_query("/site/people/person[phone][2]/name").unwrap();
        let nodes = DirectEvaluator::new(&f.tree, Some(&f.texts)).evaluate(&q);
        assert_eq!(nodes.len(), 1);
        let texts: Vec<u8> = f
            .tree
            .string_value_texts(nodes[0])
            .into_iter()
            .flat_map(|t| f.texts.get_text(t))
            .collect();
        assert_eq!(texts, b"Eve");
        // Positional predicates inside filter paths.
        assert_eq!(count(&f, "//person[ *[1][self::phone] ]"), 0); // first child is name
        assert_eq!(count(&f, "//person[ *[2][self::phone] ]"), 1); // Eve: name, phone
    }

    #[test]
    fn positions_on_reverse_axes_count_backwards() {
        let f = fixture();
        // ancestor::*[1] is the nearest ancestor.
        assert_eq!(names(&f, "//keyword/ancestor::*[1]"), ["text", "listitem"]);
        // ancestor::*[last()] is the outermost element (site).
        assert_eq!(names(&f, "//keyword/ancestor::*[last()]"), ["site"]);
        // preceding::keyword[1] is the closest preceding keyword.
        assert_eq!(count(&f, "//people/preceding::keyword[1]"), 1);
    }

    #[test]
    fn deeply_nested_documents_do_not_overflow_the_stack() {
        // The direct strategy serves production queries (CLI, batch
        // executor); a 50k-deep chain must evaluate, not abort.
        let depth = 50_000;
        let mut xml = String::with_capacity(8 * depth);
        for _ in 0..depth {
            xml.push_str("<d>");
        }
        for _ in 0..depth {
            xml.push_str("</d>");
        }
        let doc = parse_document(xml.as_bytes()).unwrap();
        let e = DirectEvaluator::new(&doc.tree, None);
        let q = parse_query("//d[last()]").unwrap();
        assert_eq!(e.count(&q), 1);
        let q = parse_query("//d[1]/descendant::d").unwrap();
        assert_eq!(e.count(&q), (depth - 1) as u64);
    }

    #[test]
    fn self_axis_steps() {
        let f = fixture();
        assert_eq!(count(&f, "/site/self::site"), 1);
        assert_eq!(count(&f, "/site/self::regions"), 0);
        assert_eq!(count(&f, "//person[ self::person ]"), 3);
        assert_eq!(count(&f, "//*[ self::keyword ]"), 2);
    }

    #[test]
    fn descendant_or_self_in_filters_includes_self() {
        let f = fixture();
        assert_eq!(count(&f, "//keyword[ descendant-or-self::keyword ]"), 2);
        assert_eq!(count(&f, "//keyword[ descendant::keyword ]"), 0);
        assert_eq!(count(&f, "//item/descendant-or-self::item"), 2);
    }
}
