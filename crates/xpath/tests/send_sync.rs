//! Compile-time thread-safety guarantees for the query layer.
//!
//! Compiled automata and bottom-up plans are immutable shared inputs for
//! the parallel batch executor; the [`Evaluator`] itself is `Send` (its
//! memoization table and statistics are per-instance, never shared), which
//! lets a worker pool create one evaluator per in-flight query.

use sxsi_xpath::eval::{EvalOptions, EvalStats, Evaluator};
use sxsi_xpath::{Automaton, BottomUpPlan, DirectEvaluator, Query, StateSet};

fn require_send_sync<T: Send + Sync>() {}
fn require_send<T: Send>() {}

#[test]
fn compiled_query_artifacts_are_send_and_sync() {
    require_send_sync::<Query>();
    require_send_sync::<Automaton>();
    require_send_sync::<BottomUpPlan>();
    require_send_sync::<EvalOptions>();
    require_send_sync::<EvalStats>();
    require_send_sync::<sxsi_xpath::DirectOutcome>();
    require_send_sync::<sxsi_xpath::BottomUpOutcome>();
    require_send_sync::<StateSet>();
    // The direct evaluator stays `Sync` via an atomic visited counter;
    // results are correct under sharing, but each run resets the counter,
    // so callers wanting meaningful statistics give each run its own
    // evaluator (as `Prepared::run` does).
    require_send_sync::<DirectEvaluator<'static>>();
}

#[test]
fn evaluator_is_send() {
    // `Evaluator` borrows the automaton/tree/texts (all `Sync`) and owns
    // its mutable caches, so a freshly created evaluator may move into a
    // worker thread.
    require_send::<Evaluator<'static>>();
}
