//! Property tests: `parse → Display → parse` is the identity on the AST,
//! over randomly generated queries covering every axis of [`AXIS_NAMES`],
//! every node test, nested boolean filters, text predicates and positional
//! predicates.

use proptest::prelude::*;
use sxsi_text::TextPredicate;
use sxsi_xpath::ast::{Axis, NodeTest, Path, PositionPred, Predicate, Query, Step};
use sxsi_xpath::{parse_query, FtMode, AXIS_NAMES};

/// A tiny deterministic generator state (xorshift) seeded per case.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn name(&mut self) -> String {
        let len = 1 + self.below(6) as usize;
        (0..len).map(|_| (b'a' + self.below(26) as u8) as char).collect()
    }
}

fn gen_axis(g: &mut Gen) -> Axis {
    AXIS_NAMES[g.below(AXIS_NAMES.len() as u64) as usize].1
}

fn gen_test(g: &mut Gen) -> NodeTest {
    match g.below(5) {
        0 => NodeTest::Wildcard,
        1 => NodeTest::Text,
        2 => NodeTest::Node,
        _ => NodeTest::Name(g.name()),
    }
}

fn gen_predicate(g: &mut Gen, depth: u32) -> Predicate {
    let choices = if depth == 0 { 4 } else { 8 };
    match g.below(choices) {
        0 => Predicate::Exists(gen_rel_path(g, depth)),
        1 => {
            let ops: [fn(Vec<u8>) -> TextPredicate; 6] = [
                TextPredicate::Contains,
                TextPredicate::StartsWith,
                TextPredicate::EndsWith,
                TextPredicate::Equals,
                TextPredicate::LessThan,
                TextPredicate::GreaterEq,
            ];
            let op = ops[g.below(6) as usize](g.name().into_bytes());
            Predicate::TextCompare { path: gen_rel_path(g, depth), op }
        }
        2 => {
            let n = 1 + g.below(9) as u32;
            let pred = match g.below(7) {
                0 => PositionPred::Eq(n),
                1 => PositionPred::Ne(n),
                2 => PositionPred::Lt(n + 1),
                3 => PositionPred::Le(n),
                4 => PositionPred::Gt(n),
                5 => PositionPred::Ge(n),
                _ => PositionPred::Last,
            };
            Predicate::Position(pred)
        }
        3 => {
            let mode = match g.below(3) {
                0 => FtMode::All,
                1 => FtMode::Any,
                _ => FtMode::Phrase,
            };
            let literals = (0..1 + g.below(3)).map(|_| g.name()).collect();
            Predicate::FullText { mode, literals }
        }
        4 => Predicate::Not(Box::new(gen_predicate(g, depth - 1))),
        5 => Predicate::And(
            Box::new(gen_predicate(g, depth - 1)),
            Box::new(gen_predicate(g, depth - 1)),
        ),
        _ => Predicate::Or(
            Box::new(gen_predicate(g, depth - 1)),
            Box::new(gen_predicate(g, depth - 1)),
        ),
    }
}

fn gen_step(g: &mut Gen, depth: u32) -> Step {
    let mut step = Step::simple(gen_axis(g), gen_test(g));
    if depth > 0 {
        for _ in 0..g.below(3) {
            step.predicates.push(gen_predicate(g, depth - 1));
        }
    }
    step
}

fn gen_rel_path(g: &mut Gen, depth: u32) -> Path {
    let steps = (0..1 + g.below(2)).map(|_| gen_step(g, depth.saturating_sub(1))).collect();
    Path::relative(steps)
}

fn gen_query(g: &mut Gen) -> Query {
    let steps = (0..1 + g.below(4)).map(|_| gen_step(g, 2)).collect();
    Query { path: Path { absolute: true, steps } }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn display_then_parse_is_identity(seed in 1u64..u64::MAX) {
        let mut g = Gen(seed);
        let query = gen_query(&mut g);
        let rendered = query.to_string();
        let reparsed = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("rendered query {rendered:?} failed to parse: {e}"));
        prop_assert_eq!(&reparsed, &query, "{}", rendered);
        // And rendering is a fixpoint.
        prop_assert_eq!(reparsed.to_string(), rendered);
    }
}

/// Every axis round-trips in a minimal query, explicitly (not only when the
/// random generator happens to produce it).
#[test]
fn every_axis_roundtrips() {
    for (name, axis) in AXIS_NAMES {
        let rendered = format!("/{name}::node()");
        let parsed = parse_query(&rendered).unwrap_or_else(|e| panic!("{rendered}: {e}"));
        assert_eq!(parsed.path.steps.last().unwrap().axis, *axis, "{rendered}");
        let reparsed = parse_query(&parsed.to_string()).unwrap();
        assert_eq!(parsed, reparsed, "{rendered}");
    }
}
