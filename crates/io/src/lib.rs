//! Versioned binary persistence for the SXSI index structures.
//!
//! SXSI's value proposition is *build once, query at memory speed*: the
//! compressed index is constructed in one expensive pass (suffix array, BWT,
//! wavelet trees, balanced parentheses) and then serves queries without ever
//! touching the original XML again.  This crate supplies the on-disk half of
//! that story: a small, dependency-free serialization layer every index
//! structure implements, so a built [`SxsiIndex`](../sxsi/struct.SxsiIndex.html)
//! can be written to a `.sxsi` file and re-opened by any number of worker
//! processes without re-parsing or rebuilding anything.
//!
//! # Design
//!
//! * [`WriteInto`] / [`ReadFrom`] — the `Serialize`/`Deserialize`-style trait
//!   pair.  Each index crate implements them for its own types (keeping
//!   private fields private); this crate only defines the traits, the
//!   primitive encodings and the error type.
//! * All integers are little-endian; lengths are `u64`.
//! * Reading is *hostile-input safe*: every length is consumed incrementally
//!   (a corrupt multi-terabyte length prefix cannot trigger a huge upfront
//!   allocation — reading fails with [`IoError::Io`] as soon as the stream
//!   runs dry), and every structural invariant is re-validated so a decoded
//!   structure can never panic later.  Corruption is reported as a structured
//!   [`IoError`], never a panic and never a silently wrong index.
//! * [`write_section`] / [`read_section`] — tagged, length-prefixed,
//!   FNV-1a-checksummed framing used by the top-level index container.
//!
//! The container format itself (magic header, format version, section
//! layout) lives with the top-level `SxsiIndex` implementation in the `sxsi`
//! crate; see `ARCHITECTURE.md` for the full byte-level description.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::io::{self, Read, Write};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Error produced when reading a serialized structure.
///
/// Truncated files surface as [`IoError::Io`] (with
/// [`std::io::ErrorKind::UnexpectedEof`]); corrupt but complete files surface
/// as [`IoError::ChecksumMismatch`] or [`IoError::Corrupt`] depending on
/// whether the damage is caught by the section checksum or by a structural
/// invariant.  None of the readers in the workspace panic on malformed input.
#[derive(Debug)]
pub enum IoError {
    /// The underlying reader failed (including unexpected end of file on a
    /// truncated input).
    Io(io::Error),
    /// The file does not start with the SXSI magic bytes.
    BadMagic {
        /// The eight bytes actually found at the start of the file.
        found: [u8; 8],
    },
    /// The file was written by an incompatible format version.
    UnsupportedVersion {
        /// Version recorded in the file header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// Tag of the offending section.
        section: u8,
    },
    /// A decoded value violates a structural invariant of its type.
    Corrupt {
        /// Human-readable description of the violated invariant.
        what: String,
    },
    /// The container holds a section tag this build does not understand.
    UnknownSection {
        /// The unrecognised tag byte.
        tag: u8,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::BadMagic { found } => {
                write!(f, "not an SXSI index file (bad magic {found:02x?})")
            }
            IoError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this build reads version {supported})")
            }
            IoError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section} (file is corrupt)")
            }
            IoError::Corrupt { what } => write!(f, "corrupt index data: {what}"),
            IoError::UnknownSection { tag } => write!(f, "unknown section tag {tag}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Builds an [`IoError::Corrupt`] from a format string.
pub fn corrupt(what: impl Into<String>) -> IoError {
    IoError::Corrupt { what: what.into() }
}

// ---------------------------------------------------------------------------
// The trait pair
// ---------------------------------------------------------------------------

/// Serialization half of the persistence trait pair.
pub trait WriteInto {
    /// Writes the structure's binary encoding to `w`.
    fn write_into<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()>;

    /// Convenience: the encoding as an owned byte buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // lint:allow(panic: Vec<u8> as io::Write is infallible)
        self.write_into(&mut out).expect("writing to a Vec cannot fail");
        out
    }
}

/// Deserialization half of the persistence trait pair.
pub trait ReadFrom: Sized {
    /// Reads a structure previously written by
    /// [`WriteInto::write_into`], re-validating every invariant.
    fn read_from<R: Read + ?Sized>(r: &mut R) -> Result<Self, IoError>;

    /// Convenience: decodes from a byte slice, requiring that every byte is
    /// consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, IoError> {
        let mut cursor = bytes;
        let value = Self::read_from(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(corrupt(format!("{} trailing bytes after value", cursor.len())));
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Primitive encodings (little-endian throughout)
// ---------------------------------------------------------------------------

/// Writes one byte.
pub fn write_u8<W: Write + ?Sized>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Reads one byte.
pub fn read_u8<R: Read + ?Sized>(r: &mut R) -> Result<u8, IoError> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0]) // lint:allow(index: buf is a local [u8; 1])
}

/// Writes a `u32`, little-endian.
pub fn write_u32<W: Write + ?Sized>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32`, little-endian.
pub fn read_u32<R: Read + ?Sized>(r: &mut R) -> Result<u32, IoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a `u64`, little-endian.
pub fn write_u64<W: Write + ?Sized>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u64`, little-endian.
pub fn read_u64<R: Read + ?Sized>(r: &mut R) -> Result<u64, IoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a `usize` as a `u64`.
pub fn write_usize<W: Write + ?Sized>(w: &mut W, v: usize) -> io::Result<()> {
    write_u64(w, v as u64)
}

/// Reads a `u64` and converts it to `usize`, erroring if it does not fit.
pub fn read_usize<R: Read + ?Sized>(r: &mut R) -> Result<usize, IoError> {
    let v = read_u64(r)?;
    usize::try_from(v).map_err(|_| corrupt(format!("length {v} exceeds the address space")))
}

/// Writes a `bool` as a single strict `0`/`1` byte.
pub fn write_bool<W: Write + ?Sized>(w: &mut W, v: bool) -> io::Result<()> {
    write_u8(w, v as u8)
}

/// Reads a strict `0`/`1` boolean byte.
pub fn read_bool<R: Read + ?Sized>(r: &mut R) -> Result<bool, IoError> {
    match read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(corrupt(format!("invalid boolean byte {other}"))),
    }
}

/// Incremental-read chunk size: a corrupt length prefix can never force an
/// allocation larger than the bytes actually present in the stream plus one
/// chunk.
const READ_CHUNK: usize = 1 << 16;

/// Reads exactly `len` bytes, incrementally (safe against corrupt lengths).
pub fn read_byte_vec<R: Read + ?Sized>(r: &mut R, len: usize) -> Result<Vec<u8>, IoError> {
    let mut out = Vec::with_capacity(len.min(READ_CHUNK));
    let mut buf = [0u8; READ_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        // lint:allow(index: take is clamped to the local buffer length)
        r.read_exact(&mut buf[..take])?;
        out.extend_from_slice(&buf[..take]); // lint:allow(index: take is clamped to the local buffer length)
        remaining -= take;
    }
    Ok(out)
}

/// Writes a length-prefixed byte slice.
pub fn write_bytes<W: Write + ?Sized>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    write_usize(w, bytes.len())?;
    w.write_all(bytes)
}

/// Reads a length-prefixed byte vector.
pub fn read_bytes<R: Read + ?Sized>(r: &mut R) -> Result<Vec<u8>, IoError> {
    let len = read_usize(r)?;
    read_byte_vec(r, len)
}

/// Writes a length-prefixed `u64` slice.
pub fn write_u64_slice<W: Write + ?Sized>(w: &mut W, values: &[u64]) -> io::Result<()> {
    write_usize(w, values.len())?;
    for &v in values {
        write_u64(w, v)?;
    }
    Ok(())
}

/// Reads a length-prefixed `u64` vector.
pub fn read_u64_vec<R: Read + ?Sized>(r: &mut R) -> Result<Vec<u64>, IoError> {
    let len = read_usize(r)?;
    let mut out = Vec::with_capacity(len.min(READ_CHUNK / 8));
    for _ in 0..len {
        out.push(read_u64(r)?);
    }
    Ok(out)
}

/// Writes a length-prefixed `u32` slice.
pub fn write_u32_slice<W: Write + ?Sized>(w: &mut W, values: &[u32]) -> io::Result<()> {
    write_usize(w, values.len())?;
    for &v in values {
        write_u32(w, v)?;
    }
    Ok(())
}

/// Reads a length-prefixed `u32` vector.
pub fn read_u32_vec<R: Read + ?Sized>(r: &mut R) -> Result<Vec<u32>, IoError> {
    let len = read_usize(r)?;
    let mut out = Vec::with_capacity(len.min(READ_CHUNK / 4));
    for _ in 0..len {
        out.push(read_u32(r)?);
    }
    Ok(out)
}

/// Writes a length-prefixed `usize` slice (as `u64`s).
pub fn write_usize_slice<W: Write + ?Sized>(w: &mut W, values: &[usize]) -> io::Result<()> {
    write_usize(w, values.len())?;
    for &v in values {
        write_usize(w, v)?;
    }
    Ok(())
}

/// Reads a length-prefixed `usize` vector.
pub fn read_usize_vec<R: Read + ?Sized>(r: &mut R) -> Result<Vec<usize>, IoError> {
    let len = read_usize(r)?;
    let mut out = Vec::with_capacity(len.min(READ_CHUNK / 8));
    for _ in 0..len {
        out.push(read_usize(r)?);
    }
    Ok(out)
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_str<W: Write + ?Sized>(w: &mut W, s: &str) -> io::Result<()> {
    write_bytes(w, s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string.
pub fn read_string<R: Read + ?Sized>(r: &mut R) -> Result<String, IoError> {
    let bytes = read_bytes(r)?;
    String::from_utf8(bytes).map_err(|e| corrupt(format!("invalid UTF-8 string: {e}")))
}

// ---------------------------------------------------------------------------
// FNV-1a checksums and section framing
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a hash of `bytes` (the per-section checksum function).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Section tag marking the end of a container (no payload follows).
pub const END_SECTION: u8 = 0;

/// Writes one tagged, length-prefixed, checksummed section.
///
/// The payload is produced by `fill` into an in-memory buffer so the length
/// and checksum can be emitted; sections are expected to be much smaller
/// than the machine's memory (they already live in RAM as index structures).
pub fn write_section<W: Write + ?Sized>(
    w: &mut W,
    tag: u8,
    fill: impl FnOnce(&mut Vec<u8>) -> io::Result<()>,
) -> io::Result<()> {
    assert_ne!(tag, END_SECTION, "section tag 0 is reserved for the end marker");
    let mut payload = Vec::new();
    fill(&mut payload)?;
    write_u8(w, tag)?;
    write_usize(w, payload.len())?;
    w.write_all(&payload)?;
    write_u64(w, fnv1a64(&payload))
}

/// Writes the end-of-container marker.
pub fn write_end<W: Write + ?Sized>(w: &mut W) -> io::Result<()> {
    write_u8(w, END_SECTION)
}

/// Reads the next section, verifying its checksum.  Returns `None` at the
/// end marker.
pub fn read_section<R: Read + ?Sized>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>, IoError> {
    let tag = read_u8(r)?;
    if tag == END_SECTION {
        return Ok(None);
    }
    let len = read_usize(r)?;
    let payload = read_byte_vec(r, len)?;
    let stored = read_u64(r)?;
    if fnv1a64(&payload) != stored {
        return Err(IoError::ChecksumMismatch { section: tag });
    }
    Ok(Some((tag, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 7).unwrap();
        write_u32(&mut buf, 0xDEADBEEF).unwrap();
        write_u64(&mut buf, u64::MAX - 3).unwrap();
        write_bool(&mut buf, true).unwrap();
        write_bytes(&mut buf, b"hello").unwrap();
        write_u64_slice(&mut buf, &[1, 2, 3]).unwrap();
        write_str(&mut buf, "héllo").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_u8(&mut r).unwrap(), 7);
        assert_eq!(read_u32(&mut r).unwrap(), 0xDEADBEEF);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 3);
        assert!(read_bool(&mut r).unwrap());
        assert_eq!(read_bytes(&mut r).unwrap(), b"hello");
        assert_eq!(read_u64_vec(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(read_string(&mut r).unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error_without_panicking() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, &[9u8; 100]).unwrap();
        for cut in [0usize, 4, 8, 50] {
            let mut r = &buf[..cut];
            assert!(matches!(read_bytes(&mut r), Err(IoError::Io(_))), "cut at {cut}");
        }
    }

    #[test]
    fn huge_length_prefix_does_not_allocate_everything() {
        // Claim 2^60 bytes follow, provide eight.
        let mut buf = Vec::new();
        write_u64(&mut buf, 1u64 << 60).unwrap();
        buf.extend_from_slice(&[1u8; 8]);
        let mut r = &buf[..];
        assert!(matches!(read_bytes(&mut r), Err(IoError::Io(_))));
    }

    #[test]
    fn invalid_bool_is_corrupt() {
        let mut r = &[2u8][..];
        assert!(matches!(read_bool(&mut r), Err(IoError::Corrupt { .. })));
    }

    #[test]
    fn sections_roundtrip_and_detect_corruption() {
        let mut buf = Vec::new();
        write_section(&mut buf, 1, |p| write_bytes(p, b"first")).unwrap();
        write_section(&mut buf, 2, |p| write_u64(p, 42)).unwrap();
        write_end(&mut buf).unwrap();

        let mut r = &buf[..];
        let (tag, payload) = read_section(&mut r).unwrap().unwrap();
        assert_eq!(tag, 1);
        assert_eq!(read_bytes(&mut &payload[..]).unwrap(), b"first");
        let (tag, payload) = read_section(&mut r).unwrap().unwrap();
        assert_eq!(tag, 2);
        assert_eq!(read_u64(&mut &payload[..]).unwrap(), 42);
        assert!(read_section(&mut r).unwrap().is_none());

        // Flip a payload byte: the checksum must catch it.
        let mut corrupted = buf.clone();
        corrupted[10] ^= 0x40;
        let mut r = &corrupted[..];
        assert!(matches!(read_section(&mut r), Err(IoError::ChecksumMismatch { section: 1 })));
    }

    #[test]
    fn from_bytes_rejects_trailing_data() {
        struct Single(u64);
        impl WriteInto for Single {
            fn write_into<W: std::io::Write + ?Sized>(&self, w: &mut W) -> std::io::Result<()> {
                write_u64(w, self.0)
            }
        }
        impl ReadFrom for Single {
            fn read_from<R: std::io::Read + ?Sized>(r: &mut R) -> Result<Self, IoError> {
                Ok(Single(read_u64(r)?))
            }
        }
        let mut bytes = Single(5).to_bytes();
        assert_eq!(Single::from_bytes(&bytes).unwrap().0, 5);
        bytes.push(0);
        assert!(matches!(Single::from_bytes(&bytes), Err(IoError::Corrupt { .. })));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
