//! The [`Strategy`] trait and the primitive value strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of random values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: `generate`
/// directly produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T`, mirroring `proptest::prelude::any`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_uint {
    ($($t:ty),*) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

any_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize);

/// A strategy producing a constant value each time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
