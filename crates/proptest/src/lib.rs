//! A tiny, dependency-free, deterministic stand-in for the `proptest` crate.
//!
//! The real `proptest` is not available in this offline build environment, so
//! this crate re-implements exactly the API surface the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` macros,
//! [`test_runner::Config`] (`ProptestConfig::with_cases`), integer-range and
//! `any::<T>()` strategies, `collection::vec`, and a small regex-subset
//! string strategy (`"[a-d]{0,8}"`-style character classes).
//!
//! Unlike the real crate there is no shrinking and no persistence: every test
//! derives a fixed seed from its module path and name, so runs are fully
//! reproducible and failures print the offending case index.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(...)]` inner attribute followed by one or
/// more `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let _ = case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::with_cases(64))]
            $(
                $(#[$attr])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property test (panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test (panics with context).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property test (panics with context).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}
