//! String strategies from regex-like patterns.
//!
//! The real proptest interprets any `&str` as a full regex; this shim
//! supports the subset used in the workspace's tests: literal characters,
//! character classes `[a-z0-9_]` (with ranges), and counted repetition
//! `{n}` / `{m,n}` applied to the preceding atom.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars.next().expect("unterminated character class");
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().expect("unterminated range");
                        assert!(lo <= hi, "inverted range in class: {pattern}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty character class: {pattern}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            _ => Atom::Literal(c),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition bound"),
                    n.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern: {pattern}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
            let mut k = rng.below(total);
            for &(lo, hi) in ranges {
                let span = hi as u64 - lo as u64 + 1;
                if k < span {
                    return char::from_u32(lo as u32 + k as u32).expect("range stays in char space");
                }
                k -= span;
            }
            unreachable!("index within total weight")
        }
    }
}

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let span = (piece.max - piece.min) as u64;
            let n = piece.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            for _ in 0..n {
                out.push(generate_atom(&piece.atom, rng));
            }
        }
        out
    }
}
