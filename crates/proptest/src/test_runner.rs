//! Deterministic RNG and per-test configuration.

/// Per-test configuration; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run for each property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A small deterministic SplitMix64 generator seeded from the test's name,
/// so every run of a given property test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator whose seed is derived from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is negligible for test sizes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
