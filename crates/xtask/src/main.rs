//! `xtask`: the repo-wide source-analysis gate and CI maintenance tasks.
//!
//! ```text
//! xtask lint [--root PATH]       run the analysis gate (exit 1 on findings)
//! xtask corrupt <in> <out>       write a semantically corrupted index copy
//! ```
//!
//! The `lint` gate enforces invariants `rustc` cannot see, by scanning
//! source text (non-test code only — everything after the first
//! `#[cfg(test)]` marker in a file is exempt):
//!
//! * **panic** — no `.unwrap()` / `.expect(…)` / `panic!` family macros on
//!   the untrusted-input files (parser, container reader, protocol
//!   decoder, daemon dispatch): those surfaces promise "structured error
//!   or success, never a panic".
//! * **index** — no slice indexing on the same files (full-range `[..]`
//!   is allowed; it cannot be out of bounds).
//! * **roundtrip** — every `impl WriteInto for T` has truncation/bit-flip
//!   test evidence somewhere in the workspace: a file that calls
//!   `T::from_bytes` and exercises damaged input.
//! * **from-tag** — every `fn from_tag` decoder has a catch-all arm, so
//!   new on-disk tag bytes cannot silently alias an existing variant.
//! * **lints** — every crate keeps `#![forbid(unsafe_code)]` and
//!   `#![deny(missing_docs)]` at its root.
//!
//! Individual sites that are provably safe opt out with a trailing or
//! preceding `// lint:allow(<family>: <reason>)` comment; a whole file
//! opts one family out with `// lint:allow-file(<family>: <reason>)`
//! (used by the cursor-invariant XML parser for the `index` family).
//! The reason is mandatory: an annotation without a rationale is itself
//! reported.  See `docs/verification.md`.
//!
//! `corrupt` rewrites a `.sxsi` container so that every checksum still
//! matches but a cross-section invariant is broken (the meta element
//! count is incremented): the CI `analysis` job feeds the copy to
//! `sxsi verify` and expects exit code 5.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sxsi_io::fnv1a64;

/// Files whose input arrives from outside a trust boundary.  The panic
/// and index families apply only here.
const UNTRUSTED_FILES: &[&str] = &[
    "crates/xml/src/parser.rs",
    "crates/xml/src/document.rs",
    "crates/io/src/lib.rs",
    "crates/engine/src/server/protocol.rs",
    "crates/engine/src/server/mod.rs",
    "crates/core/src/io.rs",
    // Keyword search sits on the query hot path and consumes whatever
    // terms arrive over the wire, so it faces the same scrutiny.
    "crates/search/src/lib.rs",
];

/// One lint finding.
#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    family: &'static str,
    message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.family, self.message)
    }
}

// The markers are assembled at runtime so the scanner does not flag its
// own string literals when it lints this file.
fn cfg_test_marker() -> String {
    format!("#[cfg{}", "(test)]")
}

/// The portion of `source` before the first `#[cfg(test)]` marker: lint
/// families apply to shipped code, not to tests.
fn non_test_prefix(source: &str) -> &str {
    match source.find(&cfg_test_marker()) {
        Some(cut) => &source[..cut],
        None => source,
    }
}

/// True if line `i` (0-based) of `lines` carries or follows a
/// `lint:allow(family: reason)` annotation, or the file carries a
/// `lint:allow-file(family: reason)` one.  Annotations without a
/// non-empty reason do not count (and are reported separately).
fn allowed(source: &str, lines: &[&str], i: usize, family: &str) -> bool {
    let site = format!("lint:allow({family}:");
    let file_wide = format!("lint:allow-file({family}:");
    let has_reason = |line: &str, marker: &str| {
        line.find(marker).is_some_and(|at| {
            let rest = &line[at + marker.len()..];
            rest.split(')').next().is_some_and(|reason| !reason.trim().is_empty())
        })
    };
    lines[i].contains(&site) && has_reason(lines[i], &site)
        || (i > 0 && lines[i - 1].contains(&site) && has_reason(lines[i - 1], &site))
        || source.lines().any(|l| has_reason(l, &file_wide))
}

/// Reports `lint:allow` annotations whose reason is empty: an opt-out
/// must say why.
fn check_annotations(file: &str, source: &str, out: &mut Vec<Violation>) {
    // Markers are assembled at runtime so this function does not flag its
    // own literals; test code may hold malformed annotations as fixtures.
    let markers = [format!("lint:{}(", "allow"), format!("lint:{}-file(", "allow")];
    for (i, line) in non_test_prefix(source).lines().enumerate() {
        for marker in &markers {
            let Some(at) = line.find(marker.as_str()) else { continue };
            let body = &line[at + marker.len()..];
            let Some(body) = body.split(')').next() else { continue };
            let reason = body.split_once(':').map(|(_, r)| r.trim());
            if reason.map_or(true, str::is_empty) {
                out.push(Violation {
                    file: file.to_string(),
                    line: i + 1,
                    family: "annotation",
                    message: format!("allow annotation '{marker}{body})' carries no reason"),
                });
            }
        }
    }
}

fn is_comment(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// The `panic` family: panicking calls on untrusted-input files.
fn check_panics(file: &str, source: &str, out: &mut Vec<Violation>) {
    let code = non_test_prefix(source);
    let lines: Vec<&str> = code.lines().collect();
    let bang_macros = ["panic!(", "unreachable!(", "todo!(", "unimplemented!("];
    for (i, line) in lines.iter().enumerate() {
        if is_comment(line) {
            continue;
        }
        let mut hit: Option<String> = None;
        if line.contains(".unwrap()") {
            hit = Some(".unwrap()".to_string());
        }
        for m in bang_macros {
            if line.contains(m) {
                hit.get_or_insert_with(|| m.to_string());
            }
        }
        // `.expect(b"…")` is the parser's own cursor method, not
        // `Option::expect`; everything else that looks like expect is
        // flagged.
        if let Some(at) = line.find(".expect(") {
            let rest = &line[at + ".expect(".len()..];
            if !rest.starts_with("b\"") && !rest.starts_with("b'") {
                hit.get_or_insert_with(|| ".expect(".to_string());
            }
        }
        if let Some(pattern) = hit {
            if !allowed(code, &lines, i, "panic") {
                out.push(Violation {
                    file: file.to_string(),
                    line: i + 1,
                    family: "panic",
                    message: format!(
                        "'{pattern}' on an untrusted-input path (return a structured error, \
                         or annotate with lint:allow(panic: reason))"
                    ),
                });
            }
        }
    }
}

/// The `index` family: slice/array indexing on untrusted-input files.
/// Full-range `[..]` cannot fail and is always allowed.
fn check_indexing(file: &str, source: &str, out: &mut Vec<Violation>) {
    let code = non_test_prefix(source);
    let lines: Vec<&str> = code.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if is_comment(line) || line.contains("#[") {
            continue;
        }
        let bytes = line.as_bytes();
        let mut flagged = false;
        for (p, &b) in bytes.iter().enumerate() {
            if b != b'[' || p == 0 {
                continue;
            }
            let prev = bytes[p - 1];
            if !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')') {
                continue; // array literal, generics, attribute…
            }
            let inner = &line[p + 1..];
            let Some(content) = inner.split(']').next() else { continue };
            if content.trim() == ".." {
                continue;
            }
            flagged = true;
        }
        if flagged && !allowed(code, &lines, i, "index") {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                family: "index",
                message: "slice indexing on an untrusted-input path (use get()/split \
                          helpers, or annotate with lint:allow(index: reason))"
                    .to_string(),
            });
        }
    }
}

/// The `roundtrip` family: every `WriteInto` impl needs damaged-input
/// test evidence — some workspace file calling `T::from_bytes` while
/// also exercising truncated or bit-flipped bytes.
fn check_roundtrips(files: &[(String, String)], out: &mut Vec<Violation>) {
    let impl_marker = format!("impl WriteInto{}", " for ");
    let damage_markers = ["truncat", "len() - ", "flip", "bytes.len()-"];
    for (file, source) in files {
        let code = non_test_prefix(source);
        let lines: Vec<&str> = code.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            let Some(at) = line.find(&impl_marker) else { continue };
            let rest = &line[at + impl_marker.len()..];
            let ty: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ty.is_empty() || allowed(code, &lines, i, "roundtrip") {
                continue;
            }
            let call = format!("{ty}::from_bytes");
            let evidence = files.iter().any(|(_, other)| {
                other.contains(&call) && damage_markers.iter().any(|m| other.contains(m))
            });
            if !evidence {
                out.push(Violation {
                    file: file.clone(),
                    line: i + 1,
                    family: "roundtrip",
                    message: format!(
                        "no truncation/bit-flip test found for '{ty}' (need a test calling \
                         {ty}::from_bytes on damaged bytes, or lint:allow(roundtrip: reason))"
                    ),
                });
            }
        }
    }
}

/// The `from-tag` family: every on-disk tag decoder must have a
/// catch-all arm so unknown bytes map to a structured error.
fn check_from_tag(file: &str, source: &str, out: &mut Vec<Violation>) {
    let code = non_test_prefix(source);
    let lines: Vec<&str> = code.lines().collect();
    let mut offset = 0usize;
    for (i, line) in lines.iter().enumerate() {
        if line.contains("fn from_tag") && !allowed(code, &lines, i, "from-tag") {
            // The decoder body is short; a catch-all within the next 400
            // characters is required.
            let body_end = (offset + line.len() + 400).min(code.len());
            let body = &code[offset..body_end];
            if !body.contains("other =>") && !body.contains("_ =>") {
                out.push(Violation {
                    file: file.to_string(),
                    line: i + 1,
                    family: "from-tag",
                    message: "tag decoder has no catch-all arm for unknown bytes".to_string(),
                });
            }
        }
        offset += line.len() + 1;
    }
}

/// The `lints` family: every crate root forbids unsafe code and denies
/// missing docs.
fn check_crate_lints(crate_roots: &[(String, String)], out: &mut Vec<Violation>) {
    for (file, source) in crate_roots {
        for required in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
            if !source.contains(required) {
                out.push(Violation {
                    file: file.clone(),
                    line: 1,
                    family: "lints",
                    message: format!("crate root is missing '{required}'"),
                });
            }
        }
    }
}

/// Collects `.rs` files under `dir`, recursively, as workspace-relative
/// `(path, contents)` pairs.
fn collect_sources(root: &Path, dir: &str, files: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut pending = vec![root.join(dir)];
    while let Some(current) = pending.pop() {
        let entries = match std::fs::read_dir(&current) {
            Ok(entries) => entries,
            Err(_) if !current.exists() => continue,
            Err(e) => return Err(format!("cannot list {}: {e}", current.display())),
        };
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot list {}: {e}", current.display()))?;
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                pending.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push((rel, text));
            }
        }
    }
    files.sort();
    Ok(())
}

/// Runs every lint family over the workspace at `root`.
fn run_lint(root: &Path) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    collect_sources(root, "crates", &mut files)?;
    collect_sources(root, "tests", &mut files)?;
    if files.is_empty() {
        return Err(format!("no sources found under {} (wrong --root?)", root.display()));
    }

    let mut out = Vec::new();
    for (file, source) in &files {
        check_annotations(file, source, &mut out);
        if UNTRUSTED_FILES.contains(&file.as_str()) {
            check_panics(file, source, &mut out);
            check_indexing(file, source, &mut out);
        }
        check_from_tag(file, source, &mut out);
    }
    check_roundtrips(&files, &mut out);

    // Crate roots: lib.rs when present, the binary root otherwise.
    let mut crate_roots = Vec::new();
    for (file, source) in &files {
        if file.ends_with("src/lib.rs") || (file.ends_with("src/main.rs") && !files.iter().any(|(f, _)| f == &file.replace("main.rs", "lib.rs"))) {
            crate_roots.push((file.clone(), source.clone()));
        }
    }
    check_crate_lints(&crate_roots, &mut out);
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("xtask: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask: unknown lint option '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root even when invoked from a crate dir.
    if !root.join("crates").is_dir() && Path::new("../../crates").is_dir() {
        root = PathBuf::from("../..");
    }
    match run_lint(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------
// corrupt: a checksum-valid semantic mutation for CI
// ---------------------------------------------------------------------

const SXSI_MAGIC: &[u8; 8] = b"SXSIIDX\0";
const META_TAG: u8 = 4;

/// Increments the meta section's element count in place, recomputing its
/// checksum so only `sxsi verify` (not the loader) can tell.
fn corrupt_meta(bytes: &mut [u8]) -> Result<(), String> {
    if bytes.len() < 13 || &bytes[..8] != SXSI_MAGIC {
        return Err("not a .sxsi container (bad magic)".to_string());
    }
    let mut pos = 12usize; // magic + version
    loop {
        let Some(&tag) = bytes.get(pos) else {
            return Err("container ends inside the section list".to_string());
        };
        if tag == 0 {
            return Err("no meta section found before the end marker".to_string());
        }
        let len_bytes = bytes
            .get(pos + 1..pos + 9)
            .ok_or("container ends inside a section header")?;
        let len = usize::try_from(u64::from_le_bytes(len_bytes.try_into().unwrap_or_default()))
            .map_err(|_| "section length overflows usize".to_string())?;
        let payload_start = pos + 9;
        let payload_end = payload_start
            .checked_add(len)
            .filter(|&end| end + 8 <= bytes.len())
            .ok_or("section payload runs past the end of the file")?;
        if tag == META_TAG {
            let count_bytes = bytes
                .get(payload_start..payload_start + 8)
                .ok_or("meta section is shorter than one u64")?;
            let count = u64::from_le_bytes(count_bytes.try_into().unwrap_or_default());
            let bumped = count.wrapping_add(1).to_le_bytes();
            bytes
                .get_mut(payload_start..payload_start + 8)
                .ok_or("meta section is shorter than one u64")?
                .copy_from_slice(&bumped);
            let checksum = fnv1a64(&bytes[payload_start..payload_end]).to_le_bytes();
            bytes
                .get_mut(payload_end..payload_end + 8)
                .ok_or("meta checksum is out of bounds")?
                .copy_from_slice(&checksum);
            return Ok(());
        }
        pos = payload_end + 8;
    }
}

fn cmd_corrupt(args: &[String]) -> ExitCode {
    let [input, output] = args else {
        eprintln!("usage: xtask corrupt <in.sxsi> <out.sxsi>");
        return ExitCode::from(2);
    };
    let mut bytes = match std::fs::read(input) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("xtask: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = corrupt_meta(&mut bytes) {
        eprintln!("xtask: {input}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(output, &bytes) {
        eprintln!("xtask: cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    println!("xtask: wrote semantically corrupted copy to {output} (meta element count +1)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("corrupt") => cmd_corrupt(&args[1..]),
        _ => {
            eprintln!("usage: xtask lint [--root PATH] | xtask corrupt <in.sxsi> <out.sxsi>");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(file: &str, source: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        check_annotations(file, source, &mut out);
        check_panics(file, source, &mut out);
        check_indexing(file, source, &mut out);
        check_from_tag(file, source, &mut out);
        out
    }

    #[test]
    fn seeded_panic_violations_are_caught() {
        let source = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let hits = lint_one("crates/io/src/lib.rs", source);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].family, "panic");
        assert_eq!(hits[0].line, 2);

        let source = "fn f() {\n    panic!(\"boom\");\n}\n";
        assert_eq!(lint_one("x.rs", source).len(), 1);

        let source = "fn f(x: Option<u8>) {\n    x.expect(\"msg\");\n}\n";
        assert_eq!(lint_one("x.rs", source).len(), 1);
    }

    #[test]
    fn parser_cursor_expect_is_not_confused_with_option_expect() {
        let source = "fn f(p: &mut P) {\n    p.expect(b\">\");\n}\n";
        assert!(lint_one("x.rs", source).is_empty());
    }

    #[test]
    fn allow_annotations_suppress_with_a_reason_only() {
        let with_reason =
            "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint:allow(panic: test seeded)\n}\n";
        assert!(lint_one("x.rs", with_reason).is_empty());

        let without_reason =
            "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint:allow(panic:)\n}\n";
        let hits = lint_one("x.rs", without_reason);
        // Both the missing reason and the undampened unwrap are reported.
        assert!(hits.iter().any(|v| v.family == "annotation"), "{hits:?}");
        assert!(hits.iter().any(|v| v.family == "panic"), "{hits:?}");
    }

    #[test]
    fn file_wide_allow_covers_every_site_of_one_family() {
        let source = "// lint:allow-file(index: cursor invariant)\nfn f(d: &[u8]) -> u8 {\n    d[0]\n}\n";
        assert!(lint_one("x.rs", source).is_empty());
        // …but only that family.
        let source = "// lint:allow-file(index: cursor invariant)\nfn f(d: &[u8]) -> u8 {\n    d[0].wrapping_add(1);\n    panic!(\"boom\")\n}\n";
        let hits = lint_one("x.rs", source);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].family, "panic");
    }

    #[test]
    fn seeded_indexing_is_caught_but_full_range_is_not() {
        let source = "fn f(d: &[u8]) -> u8 {\n    d[3]\n}\n";
        let hits = lint_one("x.rs", source);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].family, "index");

        let source = "fn f(d: &[u8]) -> &[u8] {\n    &d[..]\n}\n";
        assert!(lint_one("x.rs", source).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let marker = cfg_test_marker();
        let source = format!("fn ok() {{}}\n{marker}\nmod t {{\n    fn f(x: Option<u8>) -> u8 {{ x.unwrap() }}\n}}\n");
        assert!(lint_one("x.rs", &source).is_empty());
    }

    #[test]
    fn from_tag_without_catch_all_is_caught() {
        let source = "fn from_tag(tag: u8) -> Self {\n    match tag {\n        0 => Self::A,\n        1 => Self::B,\n    }\n}\n";
        let hits = lint_one("x.rs", source);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].family, "from-tag");

        let source = "fn from_tag(tag: u8) -> Result<Self, E> {\n    match tag {\n        0 => Ok(Self::A),\n        other => Err(bad(other)),\n    }\n}\n";
        assert!(lint_one("x.rs", source).is_empty());
    }

    #[test]
    fn roundtrip_without_evidence_is_caught() {
        let impl_line = format!("impl WriteInto{}Widget {{}}\n", " for ");
        let files = vec![("a.rs".to_string(), impl_line)];
        let mut out = Vec::new();
        check_roundtrips(&files, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].family, "roundtrip");

        let evidence = "fn t() { let _ = Widget::from_bytes(&bytes[..bytes.len() - 1]); } // truncation".to_string();
        let files = vec![files[0].clone(), ("b.rs".to_string(), evidence)];
        let mut out = Vec::new();
        check_roundtrips(&files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn crate_root_lints_are_required() {
        let roots = vec![("crates/x/src/lib.rs".to_string(), "//! docs\n".to_string())];
        let mut out = Vec::new();
        check_crate_lints(&roots, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|v| v.family == "lints"));
    }

    #[test]
    fn the_repo_itself_lints_clean() {
        // Locate the workspace root relative to this crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = run_lint(&root).expect("lint run must complete");
        assert!(
            violations.is_empty(),
            "the repo must lint clean:\n{}",
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn corrupt_meta_recomputes_the_checksum() {
        // A miniature container: magic, version, one meta section, end.
        let payload = 7u64.to_le_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SXSI_MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.push(META_TAG);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.push(0);

        let mut corrupted = bytes.clone();
        corrupt_meta(&mut corrupted).expect("well-formed container must corrupt cleanly");
        assert_ne!(bytes, corrupted);
        // Layout: magic(8) version(4) tag(1) length(8) payload(8) checksum(8).
        let new_payload = &corrupted[21..29];
        assert_eq!(u64::from_le_bytes(new_payload.try_into().unwrap()), 8);
        let new_checksum = &corrupted[29..37];
        assert_eq!(u64::from_le_bytes(new_checksum.try_into().unwrap()), fnv1a64(new_payload));

        assert!(corrupt_meta(&mut b"notmagic".to_vec()).is_err());
        assert!(corrupt_meta(&mut bytes[..12].to_vec()).is_err());
    }
}
