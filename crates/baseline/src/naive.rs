//! A conventional recursive XPath evaluator over the tree, used both as the
//! stand-in for the "classical in-memory engine" comparison of Figures 10,
//! 11 and 15, and as the correctness oracle for the SXSI engine.
//!
//! The evaluator materializes the full node list after every location step
//! (the textbook evaluation strategy), re-traverses subtrees for every
//! filter, and evaluates text predicates by extracting and scanning string
//! values — no succinct index operations, no automata, no jumping.
//!
//! Like the indexed engine it oracles, the evaluator implements XPath's
//! *ordered* step semantics: each step's selection is materialized per
//! context node in axis order (document order for forward axes, reverse
//! document order for reverse axes), predicates apply left to right with
//! re-indexing, and positional predicates (`[n]`, `[position() op n]`,
//! `[last()]`) index that exact sequence.  The reverse and ordered axes are
//! evaluated from first principles — `parent`/`ancestor` by parent loops,
//! `following`/`preceding` by full preorder enumeration with subtree-range
//! comparisons — deliberately *not* the BP-range scans the indexed direct
//! evaluator uses, so the two stay independent implementations.

use sxsi_text::{TextCollection, TextPredicate};
use sxsi_tree::{reserved, NodeId, XmlTree};
use sxsi_xpath::{Axis, FtMode, NodeTest, Path, Predicate, Query, Step};

/// Tokenization reimplemented from the specification in `docs/search.md`
/// (maximal runs of ASCII alphanumerics and bytes `>= 0x80`), deliberately
/// not shared with `sxsi-search` so the oracle and the engine can disagree.
fn naive_tokens(bytes: &[u8]) -> Vec<Vec<u8>> {
    bytes
        .split(|&b| !(b.is_ascii_alphanumeric() || b >= 0x80))
        .filter(|run| !run.is_empty())
        .map(|run| run.to_vec())
        .collect()
}

/// Naive recursive evaluator.
pub struct NaiveEvaluator<'a> {
    tree: &'a XmlTree,
    texts: &'a TextCollection,
}

impl<'a> NaiveEvaluator<'a> {
    /// Creates the evaluator over a document.
    pub fn new(tree: &'a XmlTree, texts: &'a TextCollection) -> Self {
        Self { tree, texts }
    }

    /// Evaluates an absolute query, returning result nodes in document order.
    pub fn evaluate(&self, query: &Query) -> Vec<NodeId> {
        self.eval_steps(&[self.tree.root()], &query.path.steps)
    }

    /// Number of nodes selected by the query.
    pub fn count(&self, query: &Query) -> usize {
        self.evaluate(query).len()
    }

    /// Whether the query selects at least one node.
    pub fn exists(&self, query: &Query) -> bool {
        !self.evaluate(query).is_empty()
    }

    /// The `[offset .. offset + limit]` document-order window of the
    /// query's result — the oracle for the indexed engine's truncation
    /// contract.  Deliberately the textbook implementation: evaluate fully,
    /// then slice; the indexed evaluators must produce the same window
    /// *without* the full evaluation.
    pub fn evaluate_window(&self, query: &Query, limit: Option<u64>, offset: u64) -> Vec<NodeId> {
        let full = self.evaluate(query);
        let lo = (offset as usize).min(full.len());
        let hi = match limit {
            Some(limit) => (lo + limit as usize).min(full.len()),
            None => full.len(),
        };
        full[lo..hi].to_vec()
    }

    /// Evaluates a step chain with ordered per-context semantics.
    fn eval_steps(&self, context: &[NodeId], steps: &[Step]) -> Vec<NodeId> {
        let mut context = context.to_vec();
        for step in steps {
            let mut out = Vec::new();
            for &node in &context {
                let mut candidates = self.apply_step(node, step.axis, &step.test);
                for pred in &step.predicates {
                    let last = candidates.len();
                    let mut kept = Vec::new();
                    for (i, &cand) in candidates.iter().enumerate() {
                        if self.eval_predicate(cand, pred, i + 1, last) {
                            kept.push(cand);
                        }
                    }
                    candidates = kept;
                }
                out.extend(candidates);
            }
            out.sort_unstable();
            out.dedup();
            context = out;
            if context.is_empty() {
                break;
            }
        }
        context
    }

    /// The nodes one context node's step selects, in axis order.
    fn apply_step(&self, node: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        let mut out = Vec::new();
        match axis {
            Axis::Child => {
                for c in self.tree.children(node) {
                    if self.matches(c, test) {
                        out.push(c);
                    }
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                if axis == Axis::DescendantOrSelf && self.matches(node, test) {
                    out.push(node);
                }
                self.collect_descendants(node, test, &mut out);
            }
            Axis::SelfAxis => {
                if self.matches(node, test) {
                    out.push(node);
                }
            }
            Axis::Attribute => {
                for c in self.tree.children(node) {
                    if self.tree.tag(c) == reserved::ATTRIBUTES {
                        for attr in self.tree.children(c) {
                            let name_matches = match test {
                                NodeTest::Wildcard | NodeTest::Node => true,
                                NodeTest::Name(n) => self.tree.tag_id(n) == Some(self.tree.tag(attr)),
                                NodeTest::Text => false,
                            };
                            if name_matches {
                                out.push(attr);
                            }
                        }
                    }
                }
            }
            Axis::FollowingSibling => {
                let mut cur = self.tree.next_sibling(node);
                while let Some(s) = cur {
                    if self.matches(s, test) {
                        out.push(s);
                    }
                    cur = self.tree.next_sibling(s);
                }
            }
            Axis::PrecedingSibling => {
                let mut cur = self.tree.prev_sibling(node);
                while let Some(s) = cur {
                    if self.matches(s, test) {
                        out.push(s);
                    }
                    cur = self.tree.prev_sibling(s);
                }
            }
            Axis::Parent => {
                if let Some(p) = self.parent_skipping_attributes(node) {
                    if self.matches(p, test) {
                        out.push(p);
                    }
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                if axis == Axis::AncestorOrSelf && self.matches(node, test) {
                    out.push(node);
                }
                let mut cur = self.parent_skipping_attributes(node);
                while let Some(p) = cur {
                    if self.matches(p, test) {
                        out.push(p);
                    }
                    cur = self.parent_skipping_attributes(p);
                }
            }
            Axis::Following => {
                // Everything whose whole subtree starts after this node's
                // subtree ends, by first-principles preorder enumeration.
                let node_end = self.tree.close(node);
                for y in self.tree.preorder_nodes() {
                    if y > node_end && self.matches(y, test) && !self.inside_attributes(y) {
                        out.push(y);
                    }
                }
            }
            Axis::Preceding => {
                // Everything that ends before this node starts (which
                // excludes ancestors by construction), reverse document
                // order.
                for y in self.tree.preorder_nodes() {
                    if y >= node {
                        break;
                    }
                    if self.tree.close(y) < node
                        && self.matches(y, test)
                        && !self.inside_attributes(y)
                    {
                        out.push(y);
                    }
                }
                out.reverse();
            }
        }
        out
    }

    /// Whether any ancestor of `y` is an `@` attribute container.
    fn inside_attributes(&self, y: NodeId) -> bool {
        let mut cur = self.tree.parent(y);
        while let Some(p) = cur {
            if self.tree.tag(p) == reserved::ATTRIBUTES {
                return true;
            }
            cur = self.tree.parent(p);
        }
        false
    }

    /// The XPath parent: the `@` container is part of the encoding, not of
    /// the logical tree, so the parent of an attribute node is its element.
    fn parent_skipping_attributes(&self, node: NodeId) -> Option<NodeId> {
        let p = self.tree.parent(node)?;
        if self.tree.tag(p) == reserved::ATTRIBUTES {
            self.tree.parent(p)
        } else {
            Some(p)
        }
    }

    fn collect_descendants(&self, node: NodeId, test: &NodeTest, out: &mut Vec<NodeId>) {
        for c in self.tree.children(node) {
            // The descendant axis never enters the attribute encoding.
            if self.tree.tag(c) == reserved::ATTRIBUTES {
                continue;
            }
            if self.matches(c, test) {
                out.push(c);
            }
            self.collect_descendants(c, test, out);
        }
    }

    fn matches(&self, node: NodeId, test: &NodeTest) -> bool {
        let tag = self.tree.tag(node);
        match test {
            NodeTest::Wildcard => {
                tag != reserved::ROOT
                    && tag != reserved::TEXT
                    && tag != reserved::ATTRIBUTES
                    && tag != reserved::ATTRIBUTE_VALUE
            }
            NodeTest::Name(name) => self.tree.tag_id(name) == Some(tag),
            NodeTest::Text => tag == reserved::TEXT,
            NodeTest::Node => {
                tag != reserved::ROOT && tag != reserved::ATTRIBUTES && tag != reserved::ATTRIBUTE_VALUE
            }
        }
    }

    fn eval_predicate(&self, node: NodeId, pred: &Predicate, position: usize, last: usize) -> bool {
        match pred {
            Predicate::And(a, b) => {
                self.eval_predicate(node, a, position, last)
                    && self.eval_predicate(node, b, position, last)
            }
            Predicate::Or(a, b) => {
                self.eval_predicate(node, a, position, last)
                    || self.eval_predicate(node, b, position, last)
            }
            Predicate::Not(p) => !self.eval_predicate(node, p, position, last),
            Predicate::Position(p) => p.matches(position, last),
            Predicate::Exists(path) => !self.eval_relative_path(node, path).is_empty(),
            Predicate::TextCompare { path, op } => {
                self.eval_relative_path(node, path).iter().any(|&n| self.text_matches(n, op))
            }
            Predicate::FullText { mode, literals } => self.fulltext_matches(node, *mode, literals),
        }
    }

    /// From-first-principles `ft:` evaluation: extract every text of the
    /// subtree (attribute values included), tokenize it, and compare token
    /// lists — no FM-index, no position lifting, so it stays an independent
    /// oracle for the text-first engine path.
    fn fulltext_matches(&self, node: NodeId, mode: FtMode, literals: &[String]) -> bool {
        let query_tokens: Vec<Vec<u8>> =
            literals.iter().flat_map(|l| naive_tokens(l.as_bytes())).collect();
        if query_tokens.is_empty() {
            // A query with no tokens matches nothing (see docs/search.md).
            return false;
        }
        let text_tokens: Vec<Vec<Vec<u8>>> = self
            .tree
            .text_ids(node)
            .map(|d| naive_tokens(&self.texts.get_text(d)))
            .collect();
        let occurs =
            |tok: &Vec<u8>| text_tokens.iter().any(|toks| toks.iter().any(|t| t == tok));
        match mode {
            FtMode::All => query_tokens.iter().all(occurs),
            FtMode::Any => query_tokens.iter().any(occurs),
            FtMode::Phrase => text_tokens.iter().any(|toks| {
                toks.len() >= query_tokens.len()
                    && toks.windows(query_tokens.len()).any(|w| w == query_tokens.as_slice())
            }),
        }
    }

    fn eval_relative_path(&self, node: NodeId, path: &Path) -> Vec<NodeId> {
        self.eval_steps(&[node], &path.steps)
    }

    /// The XPath string value of a node, built by extraction.
    fn string_value(&self, node: NodeId) -> Vec<u8> {
        let mut out = Vec::new();
        for d in self.tree.string_value_texts(node) {
            out.extend_from_slice(&self.texts.get_text(d));
        }
        out
    }

    fn text_matches(&self, node: NodeId, op: &TextPredicate) -> bool {
        op.matches_value(&self.string_value(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsi_xml::parse_document;
    use sxsi_xpath::parse_query;

    fn fixture() -> (XmlTree, TextCollection) {
        let xml = r#"<site><people>
            <person id="p1"><name>Alice</name><address>Oak</address><phone>1</phone></person>
            <person id="p2"><name>Bob</name><homepage>h</homepage></person>
        </people>
        <regions><item><parlist><listitem><keyword>rare</keyword></listitem></parlist></item></regions></site>"#;
        let doc = parse_document(xml.as_bytes()).unwrap();
        let texts = TextCollection::new(&doc.text_slices());
        (doc.tree, texts)
    }

    #[test]
    fn basic_queries() {
        let (tree, texts) = fixture();
        let e = NaiveEvaluator::new(&tree, &texts);
        let count = |q: &str| e.count(&parse_query(q).unwrap());
        assert_eq!(count("//person"), 2);
        assert_eq!(count("/site/people/person"), 2);
        assert_eq!(count("//person[address]"), 1);
        assert_eq!(count("//person[ phone or homepage ]/name"), 2);
        assert_eq!(count("//person[not(address)]"), 1);
        assert_eq!(count("//listitem//keyword"), 1);
        assert_eq!(count("//*"), 14);
        assert_eq!(count("//person/@id"), 2);
        assert_eq!(count(r#"//person[ .//name[ . = "Alice" ] ]"#), 1);
        assert_eq!(count(r#"//keyword[ contains(., "ar") ]"#), 1);
        assert_eq!(count(r#"//keyword[ contains(., "zz") ]"#), 0);
    }

    #[test]
    fn reverse_axes_and_positions() {
        let (tree, texts) = fixture();
        let e = NaiveEvaluator::new(&tree, &texts);
        let count = |q: &str| e.count(&parse_query(q).unwrap());
        assert_eq!(count("//keyword/ancestor::item"), 1);
        assert_eq!(count("//keyword/parent::listitem"), 1);
        assert_eq!(count("//name/.."), 2);
        assert_eq!(count("//address/preceding-sibling::name"), 1);
        assert_eq!(count("//person/preceding-sibling::person"), 1);
        assert_eq!(count("//person[1]"), 1);
        assert_eq!(count("//person[last()]"), 1);
        assert_eq!(count("//person[position() <= 2]"), 2);
        assert_eq!(count("//item/following::person"), 0); // item comes after people
        assert_eq!(count("//item/preceding::person"), 2);
        assert_eq!(count("//keyword/ancestor-or-self::keyword"), 1);
        assert_eq!(count("//@id/.."), 2); // attribute parents skip the @ container
        assert_eq!(count("/site/.."), 0); // the super-root is unselectable
    }

    #[test]
    fn descendants_skip_attribute_encoding() {
        let (tree, texts) = fixture();
        let e = NaiveEvaluator::new(&tree, &texts);
        // `//*` must not report attribute-name nodes of the model.
        let nodes = e.evaluate(&parse_query("//*").unwrap());
        for n in nodes {
            let name = tree.tag_name(tree.tag(n));
            assert_ne!(name, "id");
            assert_ne!(name, "@");
        }
    }
}
