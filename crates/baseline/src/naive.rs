//! A conventional recursive XPath evaluator over the tree, used both as the
//! stand-in for the "classical in-memory engine" comparison of Figures 10,
//! 11 and 15, and as the correctness oracle for the SXSI engine.
//!
//! The evaluator materializes the full node list after every location step
//! (the textbook evaluation strategy), re-traverses subtrees for every
//! filter, and evaluates text predicates by extracting and scanning string
//! values — no succinct index operations, no automata, no jumping.

use sxsi_text::{TextCollection, TextPredicate};
use sxsi_tree::{reserved, NodeId, XmlTree};
use sxsi_xpath::{Axis, NodeTest, Path, Predicate, Query};

/// Naive recursive evaluator.
pub struct NaiveEvaluator<'a> {
    tree: &'a XmlTree,
    texts: &'a TextCollection,
}

impl<'a> NaiveEvaluator<'a> {
    /// Creates the evaluator over a document.
    pub fn new(tree: &'a XmlTree, texts: &'a TextCollection) -> Self {
        Self { tree, texts }
    }

    /// Evaluates an absolute query, returning result nodes in document order.
    pub fn evaluate(&self, query: &Query) -> Vec<NodeId> {
        let mut context = vec![self.tree.root()];
        for step in &query.path.steps {
            context = self.apply_step(&context, step.axis, &step.test);
            for pred in &step.predicates {
                context.retain(|&n| self.eval_predicate(n, pred));
            }
            context.sort_unstable();
            context.dedup();
        }
        context
    }

    /// Number of nodes selected by the query.
    pub fn count(&self, query: &Query) -> usize {
        self.evaluate(query).len()
    }

    fn apply_step(&self, context: &[NodeId], axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        let mut out = Vec::new();
        for &node in context {
            match axis {
                Axis::Child => {
                    for c in self.tree.children(node) {
                        if self.matches(c, test) {
                            out.push(c);
                        }
                    }
                }
                Axis::Descendant | Axis::DescendantOrSelf => {
                    if axis == Axis::DescendantOrSelf && self.matches(node, test) {
                        out.push(node);
                    }
                    self.collect_descendants(node, test, &mut out);
                }
                Axis::SelfAxis => {
                    if self.matches(node, test) {
                        out.push(node);
                    }
                }
                Axis::Attribute => {
                    for c in self.tree.children(node) {
                        if self.tree.tag(c) == reserved::ATTRIBUTES {
                            for attr in self.tree.children(c) {
                                let name_matches = match test {
                                    NodeTest::Wildcard | NodeTest::Node => true,
                                    NodeTest::Name(n) => self.tree.tag_id(n) == Some(self.tree.tag(attr)),
                                    NodeTest::Text => false,
                                };
                                if name_matches {
                                    out.push(attr);
                                }
                            }
                        }
                    }
                }
                Axis::FollowingSibling => {
                    let mut cur = self.tree.next_sibling(node);
                    while let Some(s) = cur {
                        if self.matches(s, test) {
                            out.push(s);
                        }
                        cur = self.tree.next_sibling(s);
                    }
                }
            }
        }
        out
    }

    fn collect_descendants(&self, node: NodeId, test: &NodeTest, out: &mut Vec<NodeId>) {
        for c in self.tree.children(node) {
            // The descendant axis never enters the attribute encoding.
            if self.tree.tag(c) == reserved::ATTRIBUTES {
                continue;
            }
            if self.matches(c, test) {
                out.push(c);
            }
            self.collect_descendants(c, test, out);
        }
    }

    fn matches(&self, node: NodeId, test: &NodeTest) -> bool {
        let tag = self.tree.tag(node);
        match test {
            NodeTest::Wildcard => {
                tag != reserved::ROOT
                    && tag != reserved::TEXT
                    && tag != reserved::ATTRIBUTES
                    && tag != reserved::ATTRIBUTE_VALUE
            }
            NodeTest::Name(name) => self.tree.tag_id(name) == Some(tag),
            NodeTest::Text => tag == reserved::TEXT,
            NodeTest::Node => {
                tag != reserved::ROOT && tag != reserved::ATTRIBUTES && tag != reserved::ATTRIBUTE_VALUE
            }
        }
    }

    fn eval_predicate(&self, node: NodeId, pred: &Predicate) -> bool {
        match pred {
            Predicate::And(a, b) => self.eval_predicate(node, a) && self.eval_predicate(node, b),
            Predicate::Or(a, b) => self.eval_predicate(node, a) || self.eval_predicate(node, b),
            Predicate::Not(p) => !self.eval_predicate(node, p),
            Predicate::Exists(path) => !self.eval_relative_path(node, path).is_empty(),
            Predicate::TextCompare { path, op } => {
                if path.is_context_only() {
                    self.text_matches(node, op)
                } else {
                    self.eval_relative_path(node, path).iter().any(|&n| self.text_matches(n, op))
                }
            }
        }
    }

    fn eval_relative_path(&self, node: NodeId, path: &Path) -> Vec<NodeId> {
        let mut context = vec![node];
        for step in &path.steps {
            context = self.apply_step(&context, step.axis, &step.test);
            for pred in &step.predicates {
                context.retain(|&n| self.eval_predicate(n, pred));
            }
            context.sort_unstable();
            context.dedup();
            if context.is_empty() {
                break;
            }
        }
        context
    }

    /// The XPath string value of a node, built by extraction.
    fn string_value(&self, node: NodeId) -> Vec<u8> {
        let mut out = Vec::new();
        for d in self.tree.string_value_texts(node) {
            out.extend_from_slice(&self.texts.get_text(d));
        }
        out
    }

    fn text_matches(&self, node: NodeId, op: &TextPredicate) -> bool {
        op.matches_value(&self.string_value(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsi_xml::parse_document;
    use sxsi_xpath::parse_query;

    fn fixture() -> (XmlTree, TextCollection) {
        let xml = r#"<site><people>
            <person id="p1"><name>Alice</name><address>Oak</address><phone>1</phone></person>
            <person id="p2"><name>Bob</name><homepage>h</homepage></person>
        </people>
        <regions><item><parlist><listitem><keyword>rare</keyword></listitem></parlist></item></regions></site>"#;
        let doc = parse_document(xml.as_bytes()).unwrap();
        let texts = TextCollection::new(&doc.text_slices());
        (doc.tree, texts)
    }

    #[test]
    fn basic_queries() {
        let (tree, texts) = fixture();
        let e = NaiveEvaluator::new(&tree, &texts);
        let count = |q: &str| e.count(&parse_query(q).unwrap());
        assert_eq!(count("//person"), 2);
        assert_eq!(count("/site/people/person"), 2);
        assert_eq!(count("//person[address]"), 1);
        assert_eq!(count("//person[ phone or homepage ]/name"), 2);
        assert_eq!(count("//person[not(address)]"), 1);
        assert_eq!(count("//listitem//keyword"), 1);
        assert_eq!(count("//*"), 14);
        assert_eq!(count("//person/@id"), 2);
        assert_eq!(count(r#"//person[ .//name[ . = "Alice" ] ]"#), 1);
        assert_eq!(count(r#"//keyword[ contains(., "ar") ]"#), 1);
        assert_eq!(count(r#"//keyword[ contains(., "zz") ]"#), 0);
    }

    #[test]
    fn descendants_skip_attribute_encoding() {
        let (tree, texts) = fixture();
        let e = NaiveEvaluator::new(&tree, &texts);
        // `//*` must not report attribute-name nodes of the model.
        let nodes = e.evaluate(&parse_query("//*").unwrap());
        for n in nodes {
            let name = tree.tag_name(tree.tag(n));
            assert_ne!(name, "id");
            assert_ne!(name, "@");
        }
    }
}
