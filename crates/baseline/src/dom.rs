//! A pointer-based DOM-like tree (the paper's Tables IV–VI comparison point).
//!
//! Every node stores its tag, first child, next sibling and parent as plain
//! machine-word indexes, allocated in pre-order — the most favourable layout
//! for pre-order traversal, as the paper notes.  The structure is built
//! directly from SAX events, exactly like the succinct tree, so construction
//! times are comparable.

use sxsi_xml::{Event, ParseError, Parser};

/// Index of a node in the pointer tree (pre-order allocation).
pub type DomNodeId = usize;

/// One pointer-tree node.
#[derive(Debug, Clone)]
pub struct PointerNode {
    /// Tag identifier (index into [`PointerTree::tag_names`]).
    pub tag: u32,
    /// First child, if any.
    pub first_child: Option<DomNodeId>,
    /// Next sibling, if any.
    pub next_sibling: Option<DomNodeId>,
    /// Parent (None for the root).
    pub parent: Option<DomNodeId>,
    /// Index of the node's text, for text leaves.
    pub text: Option<usize>,
}

/// Pointer-based tree with tag names and plain text storage.
#[derive(Debug, Default, Clone)]
pub struct PointerTree {
    /// Nodes in pre-order.
    pub nodes: Vec<PointerNode>,
    /// Distinct tag names.
    pub tag_names: Vec<String>,
    /// Text contents in document order.
    pub texts: Vec<String>,
}

impl PointerTree {
    /// Builds the pointer tree from raw XML.
    pub fn build_from_xml(xml: &[u8]) -> Result<Self, ParseError> {
        let mut tree = PointerTree::default();
        let mut tag_ids = std::collections::HashMap::new();
        let mut intern = |tree: &mut PointerTree, name: &str| -> u32 {
            if let Some(&id) = tag_ids.get(name) {
                return id;
            }
            let id = tree.tag_names.len() as u32;
            tree.tag_names.push(name.to_string());
            tag_ids.insert(name.to_string(), id);
            id
        };

        // Synthetic root.
        let root_tag = intern(&mut tree, "&");
        tree.nodes.push(PointerNode { tag: root_tag, first_child: None, next_sibling: None, parent: None, text: None });
        let mut stack: Vec<DomNodeId> = vec![0];
        let mut last_child: Vec<Option<DomNodeId>> = vec![None];

        let push_node = |tree: &mut PointerTree,
                             stack: &Vec<DomNodeId>,
                             last_child: &mut Vec<Option<DomNodeId>>,
                             tag: u32,
                             text: Option<usize>|
         -> DomNodeId {
            let parent = *stack.last().expect("root always present");
            let id = tree.nodes.len();
            tree.nodes.push(PointerNode { tag, first_child: None, next_sibling: None, parent: Some(parent), text });
            match last_child.last_mut().expect("aligned with stack") {
                Some(prev) => tree.nodes[*prev].next_sibling = Some(id),
                None => tree.nodes[parent].first_child = Some(id),
            }
            *last_child.last_mut().expect("aligned with stack") = Some(id);
            id
        };

        let mut parser = Parser::new(xml);
        loop {
            match parser.next_event()? {
                Event::StartElement { name, attributes, self_closing } => {
                    let tag = intern(&mut tree, &name);
                    let id = push_node(&mut tree, &stack, &mut last_child, tag, None);
                    // Keep the element's frame open while its attribute
                    // encoding is built, so later content children are linked
                    // after the `@` container rather than overwriting it.
                    stack.push(id);
                    last_child.push(None);
                    if !attributes.is_empty() {
                        let at_tag = intern(&mut tree, "@");
                        let at_id = push_node(&mut tree, &stack, &mut last_child, at_tag, None);
                        stack.push(at_id);
                        last_child.push(None);
                        for (attr_name, value) in &attributes {
                            let attr_tag = intern(&mut tree, attr_name);
                            let attr_id = push_node(&mut tree, &stack, &mut last_child, attr_tag, None);
                            let value_tag = intern(&mut tree, "%");
                            stack.push(attr_id);
                            last_child.push(None);
                            let text_idx = tree.texts.len();
                            tree.texts.push(value.clone());
                            push_node(&mut tree, &stack, &mut last_child, value_tag, Some(text_idx));
                            stack.pop();
                            last_child.pop();
                        }
                        stack.pop();
                        last_child.pop();
                    }
                    if self_closing {
                        stack.pop();
                        last_child.pop();
                    }
                }
                Event::EndElement { .. } => {
                    stack.pop();
                    last_child.pop();
                }
                Event::Text(text) => {
                    if stack.len() > 1 && !text.trim().is_empty() {
                        let tag = intern(&mut tree, "#");
                        let text_idx = tree.texts.len();
                        tree.texts.push(text);
                        push_node(&mut tree, &stack, &mut last_child, tag, Some(text_idx));
                    }
                }
                Event::Eof => break,
            }
        }
        Ok(tree)
    }

    /// Number of nodes (including the synthetic root and model nodes).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Heap bytes retained (the "5–10× blow-up" the paper mentions comes
    /// from exactly this kind of representation).
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<PointerNode>()
            + self.texts.iter().map(|t| t.len()).sum::<usize>()
            + self.tag_names.iter().map(|t| t.len()).sum::<usize>()
    }

    /// Full recursive pre-order traversal counting every node (Table V).
    pub fn count_traversal(&self) -> usize {
        fn rec(tree: &PointerTree, node: DomNodeId) -> usize {
            let mut count = 1;
            let mut child = tree.nodes[node].first_child;
            while let Some(c) = child {
                count += rec(tree, c);
                child = tree.nodes[c].next_sibling;
            }
            count
        }
        rec(self, 0)
    }

    /// Counts the nodes carrying a given tag by full traversal (Table VI's
    /// hand-written traversal baseline).
    pub fn count_tag(&self, tag_name: &str) -> usize {
        let Some(tag) = self.tag_names.iter().position(|t| t == tag_name) else { return 0 };
        let tag = tag as u32;
        self.nodes.iter().filter(|n| n.tag == tag).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_same_shape_as_the_succinct_tree() {
        let xml = r#"<parts><part name="pen"><color>blue</color><stock>40</stock>Soon</part><part name="rubber"><stock>30</stock></part></parts>"#;
        let dom = PointerTree::build_from_xml(xml.as_bytes()).unwrap();
        let doc = sxsi_xml::parse_document(xml.as_bytes()).unwrap();
        assert_eq!(dom.num_nodes(), doc.tree.num_nodes());
        assert_eq!(dom.count_traversal(), doc.tree.num_nodes());
        assert_eq!(dom.texts.len(), doc.texts.len());
        assert_eq!(dom.count_tag("part"), 2);
        assert_eq!(dom.count_tag("stock"), 2);
        assert_eq!(dom.count_tag("missing"), 0);
    }

    #[test]
    fn parent_and_sibling_links_are_consistent() {
        let xml = "<a><b/><c><d/></c></a>";
        let dom = PointerTree::build_from_xml(xml.as_bytes()).unwrap();
        for (i, node) in dom.nodes.iter().enumerate() {
            if let Some(c) = node.first_child {
                assert_eq!(dom.nodes[c].parent, Some(i));
            }
            if let Some(s) = node.next_sibling {
                assert_eq!(dom.nodes[s].parent, node.parent);
            }
        }
    }
}
