//! A single-pass streaming counter for simple descendant queries.
//!
//! Represents the streaming engines (GCX, SPEX) the paper's introduction
//! compares against: no index is built, every query reads the whole
//! document once.

use sxsi_xml::{Event, ParseError, Parser};

/// Streaming evaluation of `//tag1//tag2//…//tagk` queries.
pub struct StreamingCounter;

impl StreamingCounter {
    /// Counts the elements matched by the descendant-only path `tags` in one
    /// pass over `xml`, without building any data structure.
    pub fn count_descendant_path(xml: &[u8], tags: &[&str]) -> Result<usize, ParseError> {
        if tags.is_empty() {
            return Ok(0);
        }
        let mut parser = Parser::new(xml);
        let k = tags.len();
        // `level` = longest prefix of `tags` matched (greedily, in order) by
        // the currently open ancestors; greedy prefix matching is optimal on
        // a single ancestor path, so an element is a result exactly when its
        // proper ancestors reach level `k - 1` and its own name is the last
        // step.  Only levels up to `k - 1` ever need to be tracked.
        let mut open_progress: Vec<usize> = Vec::new();
        let mut level = 0usize;
        let mut count = 0usize;
        loop {
            match parser.next_event()? {
                Event::StartElement { name, self_closing, .. } => {
                    if level >= k - 1 && name == tags[k - 1] {
                        count += 1;
                    }
                    let advances = level < k - 1 && name == tags[level];
                    if advances {
                        level += 1;
                    }
                    if !self_closing {
                        open_progress.push(if advances { 1 } else { 0 });
                    } else if advances {
                        level -= 1;
                    }
                }
                Event::EndElement { .. } => {
                    if let Some(advanced) = open_progress.pop() {
                        level -= advanced;
                    }
                }
                Event::Text(_) => {}
                Event::Eof => break,
            }
        }
        Ok(count)
    }
}

impl StreamingCounter {
    /// Counts the matches of the descendant-only path `tags`, stopping the
    /// stream as soon as `max` matches were seen — the streaming engine's
    /// version of the truncation contract: an early answer means the rest
    /// of the document is never even parsed.  Returns the (possibly capped)
    /// count; a malformed tail *after* the cap is therefore never
    /// inspected.
    pub fn count_descendant_path_limited(
        xml: &[u8],
        tags: &[&str],
        max: usize,
    ) -> Result<usize, ParseError> {
        if tags.is_empty() || max == 0 {
            return Ok(0);
        }
        let mut parser = Parser::new(xml);
        let k = tags.len();
        let mut open_progress: Vec<usize> = Vec::new();
        let mut level = 0usize;
        let mut count = 0usize;
        loop {
            match parser.next_event()? {
                Event::StartElement { name, self_closing, .. } => {
                    if level >= k - 1 && name == tags[k - 1] {
                        count += 1;
                        if count >= max {
                            return Ok(count);
                        }
                    }
                    let advances = level < k - 1 && name == tags[level];
                    if advances {
                        level += 1;
                    }
                    if !self_closing {
                        open_progress.push(if advances { 1 } else { 0 });
                    } else if advances {
                        level -= 1;
                    }
                }
                Event::EndElement { .. } => {
                    if let Some(advanced) = open_progress.pop() {
                        level -= advanced;
                    }
                }
                Event::Text(_) => {}
                Event::Eof => break,
            }
        }
        Ok(count)
    }

    /// Whether the descendant-only path `tags` matches anywhere, reading
    /// the stream only up to the first match.
    pub fn exists_descendant_path(xml: &[u8], tags: &[&str]) -> Result<bool, ParseError> {
        Ok(Self::count_descendant_path_limited(xml, tags, 1)? > 0)
    }

    /// Counts the distinct elements named `parent` that have at least one
    /// child element named `child` — the streaming equivalent of
    /// `//child/parent::parent` — in one pass, without building any tree.
    pub fn count_parent_of(xml: &[u8], parent: &str, child: &str) -> Result<usize, ParseError> {
        let mut parser = Parser::new(xml);
        // For every open element: (is the parent tag, has a matching child).
        let mut open: Vec<(bool, bool)> = Vec::new();
        let mut count = 0usize;
        loop {
            match parser.next_event()? {
                Event::StartElement { name, self_closing, .. } => {
                    if name == child {
                        if let Some(top) = open.last_mut() {
                            top.1 = true;
                        }
                    }
                    if !self_closing {
                        open.push((name == parent, false));
                    }
                    // A self-closing parent candidate has no children and
                    // can never count.
                }
                Event::EndElement { .. } => {
                    if let Some((is_parent, has_child)) = open.pop() {
                        if is_parent && has_child {
                            count += 1;
                        }
                    }
                }
                Event::Text(_) => {}
                Event::Eof => break,
            }
        }
        Ok(count)
    }

    /// Counts the elements named `tag` that are the `n`-th (1-based)
    /// `tag`-named child of their (element) parent — the streaming
    /// equivalent of `//*/tag[n]` under the ordered positional semantics —
    /// in one pass.
    pub fn count_nth_child(xml: &[u8], tag: &str, n: usize) -> Result<usize, ParseError> {
        let mut parser = Parser::new(xml);
        // Per open element: how many `tag` children seen so far.  The
        // document element itself has no tracked parent, matching the
        // indexed query's `//*` context (the synthetic root is not `*`).
        let mut seen: Vec<usize> = Vec::new();
        let mut count = 0usize;
        loop {
            match parser.next_event()? {
                Event::StartElement { name, self_closing, .. } => {
                    if name == tag {
                        if let Some(top) = seen.last_mut() {
                            *top += 1;
                            if *top == n {
                                count += 1;
                            }
                        }
                    }
                    if !self_closing {
                        seen.push(0);
                    }
                }
                Event::EndElement { .. } => {
                    seen.pop();
                }
                Event::Text(_) => {}
                Event::Eof => break,
            }
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_descendant_paths() {
        let xml = b"<a><b><c/><c/></b><b><d><c/></d></b><c/></a>";
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["c"]).unwrap(), 4);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["b", "c"]).unwrap(), 3);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["a", "b", "c"]).unwrap(), 3);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["d", "c"]).unwrap(), 1);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["z"]).unwrap(), 0);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &[]).unwrap(), 0);
    }

    #[test]
    fn nested_matches_count_each_occurrence() {
        let xml = b"<a><b><b><c/></b></b></a>";
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["b"]).unwrap(), 2);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["b", "c"]).unwrap(), 1);
    }

    #[test]
    fn limited_counts_cap_and_stop_the_stream() {
        let xml = b"<a><b><c/><c/></b><b><d><c/></d></b><c/></a>";
        for max in 1..6 {
            let capped = StreamingCounter::count_descendant_path_limited(xml, &["c"], max).unwrap();
            assert_eq!(capped, 4.min(max));
        }
        assert!(StreamingCounter::exists_descendant_path(xml, &["b", "c"]).unwrap());
        assert!(!StreamingCounter::exists_descendant_path(xml, &["z"]).unwrap());
        // The stream truly stops early: garbage after the first match is
        // never parsed when the cap is already satisfied.
        let broken = b"<a><c/><truncated-in-tag";
        assert_eq!(
            StreamingCounter::count_descendant_path_limited(broken, &["c"], 1).unwrap(),
            1
        );
        assert!(StreamingCounter::count_descendant_path_limited(broken, &["c"], 2).is_err());
    }

    #[test]
    fn counts_parents_with_matching_children() {
        let xml = b"<a><p><c/><c/></p><p><d/></p><q><p><c/></p></q><p/></a>";
        assert_eq!(StreamingCounter::count_parent_of(xml, "p", "c").unwrap(), 2);
        assert_eq!(StreamingCounter::count_parent_of(xml, "p", "d").unwrap(), 1);
        assert_eq!(StreamingCounter::count_parent_of(xml, "q", "p").unwrap(), 1);
        assert_eq!(StreamingCounter::count_parent_of(xml, "p", "z").unwrap(), 0);
        // Only direct children count, and nesting is handled per element.
        assert_eq!(StreamingCounter::count_parent_of(xml, "a", "c").unwrap(), 0);
        assert_eq!(StreamingCounter::count_parent_of(xml, "q", "c").unwrap(), 0);
    }

    #[test]
    fn counts_positional_children() {
        let xml = b"<a><p><c/><c/><c/></p><p><d/><c/></p></a>";
        // Three c's in the first p (positions 1..3), one in the second
        // (position 1, the d does not advance c's position).
        assert_eq!(StreamingCounter::count_nth_child(xml, "c", 1).unwrap(), 2);
        assert_eq!(StreamingCounter::count_nth_child(xml, "c", 2).unwrap(), 1);
        assert_eq!(StreamingCounter::count_nth_child(xml, "c", 3).unwrap(), 1);
        assert_eq!(StreamingCounter::count_nth_child(xml, "c", 4).unwrap(), 0);
        // The document element has no tracked parent.
        assert_eq!(StreamingCounter::count_nth_child(xml, "a", 1).unwrap(), 0);
        assert_eq!(StreamingCounter::count_nth_child(xml, "p", 2).unwrap(), 1);
    }
}
