//! A single-pass streaming counter for simple descendant queries.
//!
//! Represents the streaming engines (GCX, SPEX) the paper's introduction
//! compares against: no index is built, every query reads the whole
//! document once.

use sxsi_xml::{Event, ParseError, Parser};

/// Streaming evaluation of `//tag1//tag2//…//tagk` queries.
pub struct StreamingCounter;

impl StreamingCounter {
    /// Counts the elements matched by the descendant-only path `tags` in one
    /// pass over `xml`, without building any data structure.
    pub fn count_descendant_path(xml: &[u8], tags: &[&str]) -> Result<usize, ParseError> {
        if tags.is_empty() {
            return Ok(0);
        }
        let mut parser = Parser::new(xml);
        let k = tags.len();
        // `level` = longest prefix of `tags` matched (greedily, in order) by
        // the currently open ancestors; greedy prefix matching is optimal on
        // a single ancestor path, so an element is a result exactly when its
        // proper ancestors reach level `k - 1` and its own name is the last
        // step.  Only levels up to `k - 1` ever need to be tracked.
        let mut open_progress: Vec<usize> = Vec::new();
        let mut level = 0usize;
        let mut count = 0usize;
        loop {
            match parser.next_event()? {
                Event::StartElement { name, self_closing, .. } => {
                    if level >= k - 1 && name == tags[k - 1] {
                        count += 1;
                    }
                    let advances = level < k - 1 && name == tags[level];
                    if advances {
                        level += 1;
                    }
                    if !self_closing {
                        open_progress.push(if advances { 1 } else { 0 });
                    } else if advances {
                        level -= 1;
                    }
                }
                Event::EndElement { .. } => {
                    if let Some(advanced) = open_progress.pop() {
                        level -= advanced;
                    }
                }
                Event::Text(_) => {}
                Event::Eof => break,
            }
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_descendant_paths() {
        let xml = b"<a><b><c/><c/></b><b><d><c/></d></b><c/></a>";
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["c"]).unwrap(), 4);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["b", "c"]).unwrap(), 3);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["a", "b", "c"]).unwrap(), 3);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["d", "c"]).unwrap(), 1);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["z"]).unwrap(), 0);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &[]).unwrap(), 0);
    }

    #[test]
    fn nested_matches_count_each_occurrence() {
        let xml = b"<a><b><b><c/></b></b></a>";
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["b"]).unwrap(), 2);
        assert_eq!(StreamingCounter::count_descendant_path(xml, &["b", "c"]).unwrap(), 1);
    }
}
