//! Baselines for the SXSI evaluation.
//!
//! The paper compares SXSI against conventional in-memory XML engines
//! (MonetDB/XQuery and Qizx/DB), against a pointer-based DOM representation
//! (Tables IV–VI) and against streaming evaluators (GCX/SPEX, Section 1).
//! Those systems are not available here, so this crate provides honest
//! re-implementations of the *approaches* they represent:
//!
//! * [`PointerTree`] — a classical pointer-based tree (two machine words per
//!   node for first-child/next-sibling plus parent and tag), the comparison
//!   point of the construction and traversal experiments;
//! * [`NaiveEvaluator`] — a conventional recursive XPath evaluator that
//!   materializes intermediate node lists step by step, without any succinct
//!   index or automaton; it doubles as the correctness oracle for the SXSI
//!   engine in the integration tests;
//! * [`StreamingCounter`] — a single-pass SAX-style counter for simple
//!   descendant queries, representing the streaming approach.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dom;
pub mod naive;
pub mod streaming;

pub use dom::{PointerNode, PointerTree};
pub use naive::NaiveEvaluator;
pub use streaming::StreamingCounter;
