//! Compile-time thread-safety guarantees for the document model.

use sxsi_xml::{DocumentOptions, ParsedDocument};

fn require_send_sync<T: Send + Sync>() {}

#[test]
fn document_model_is_send_and_sync() {
    // A parsed document (tree + texts) can be handed to another thread for
    // index construction, or shared once built.
    require_send_sync::<ParsedDocument>();
    require_send_sync::<DocumentOptions>();
}
