//! A small, self-contained XML parser producing SAX-like events.
//!
//! SXSI builds its indexes from a single streaming pass over the document
//! (the paper uses libxml2's SAX interface); this module provides that pass
//! without external dependencies.  The parser covers the XML subset needed
//! for the paper's corpora: elements, attributes, character data, CDATA
//! sections, comments, processing instructions, an (ignored) DOCTYPE, and
//! the predefined plus numeric character entities.

// lint:allow-file(index: the cursor invariant `pos <= input.len()` is
// established by eof()/peek() guards before every direct access; the
// fuzzer's xml driver exercises this file with arbitrary bytes)

use std::fmt;

/// A SAX-like event emitted by [`Parser`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="value" …>` — attributes are `(name, unescaped value)`.
    StartElement {
        /// Element name.
        name: String,
        /// Attribute name/value pairs in document order.
        attributes: Vec<(String, String)>,
        /// Whether the element is self-closing (`<a/>`); no matching
        /// [`Event::EndElement`] will follow.
        self_closing: bool,
    },
    /// `</name>`
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data (entity references already resolved) or CDATA content.
    Text(String),
    /// End of the document.
    Eof,
}

/// Error raised on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Streaming XML parser.
pub struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Creates a parser over the input bytes.
    pub fn new(input: &'a [u8]) -> Self {
        Self { input, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { position: self.pos, message: message.into() })
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &[u8]) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            self.err(format!("expected {:?}", String::from_utf8_lossy(s)))
        }
    }

    fn read_until(&mut self, delim: &[u8]) -> Result<&'a [u8], ParseError> {
        let start = self.pos;
        while self.pos < self.input.len() {
            if self.starts_with(delim) {
                let out = &self.input[start..self.pos];
                self.pos += delim.len();
                return Ok(out);
            }
            self.pos += 1;
        }
        self.err(format!("unterminated construct, expected {:?}", String::from_utf8_lossy(delim)))
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// Returns the next event, or `Event::Eof` at end of input.
    pub fn next_event(&mut self) -> Result<Event, ParseError> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(Event::Eof);
            }
            if self.peek() == Some(b'<') {
                if self.starts_with(b"<!--") {
                    self.pos += 4;
                    self.read_until(b"-->")?;
                    continue;
                }
                if self.starts_with(b"<![CDATA[") {
                    self.pos += 9;
                    let content = self.read_until(b"]]>")?;
                    return Ok(Event::Text(String::from_utf8_lossy(content).into_owned()));
                }
                if self.starts_with(b"<!DOCTYPE") || self.starts_with(b"<!doctype") {
                    self.skip_doctype()?;
                    continue;
                }
                if self.starts_with(b"<?") {
                    self.pos += 2;
                    self.read_until(b"?>")?;
                    continue;
                }
                if self.starts_with(b"</") {
                    self.pos += 2;
                    let name = self.read_name()?;
                    self.skip_whitespace();
                    self.expect(b">")?;
                    return Ok(Event::EndElement { name });
                }
                return self.parse_start_element();
            }
            // Character data up to the next '<'.
            let start = self.pos;
            while self.pos < self.input.len() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            let raw = &self.input[start..self.pos];
            return Ok(Event::Text(unescape(raw)));
        }
    }

    fn parse_start_element(&mut self) -> Result<Event, ParseError> {
        self.expect(b"<")?;
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(Event::StartElement { name, attributes, self_closing: false });
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b">")?;
                    return Ok(Event::StartElement { name, attributes, self_closing: true });
                }
                Some(_) => {
                    let attr_name = self.read_name()?;
                    self.skip_whitespace();
                    self.expect(b"=")?;
                    self.skip_whitespace();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return self.err("expected a quoted attribute value"),
                    };
                    self.pos += 1;
                    let value = self.read_until(&[quote])?;
                    attributes.push((attr_name, unescape(value)));
                }
                None => return self.err("unexpected end of input inside a tag"),
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        // Skip "<!DOCTYPE ... >" allowing one level of [...] internal subset.
        self.pos += 9;
        let mut depth = 0usize;
        while self.pos < self.input.len() {
            match self.input[self.pos] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        self.err("unterminated DOCTYPE")
    }
}

/// Resolves entity and character references in raw character data.
///
/// Unrecognised or malformed references (`&unknown;`, `&#;`, `&#x;`, bare
/// `&`, out-of-range code points such as `&#x110000;`) are preserved
/// literally, matching the lenient behaviour real-world corpora require.
///
/// The lookahead after an `&` only walks bytes that can legally appear in an
/// entity body (ASCII alphanumerics and `#`), stopping at the first other
/// byte.  This keeps the function linear — character data full of bare
/// ampersands previously scanned ahead to the end of the run for a `;` that
/// never comes, giving O(n²) — while still decoding every reference the
/// unbounded scan decoded (entity bodies containing other bytes were never
/// recognised anyway).
pub fn unescape(raw: &[u8]) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == b'&' {
            let mut body_end = i + 1;
            while body_end < raw.len()
                && (raw[body_end].is_ascii_alphanumeric() || raw[body_end] == b'#')
            {
                body_end += 1;
            }
            if body_end < raw.len() && raw[body_end] == b';' {
                let end = body_end - i; // offset of ';' relative to the '&'
                let entity = &raw[i + 1..i + end];
                let replacement: Option<String> = match entity {
                    b"amp" => Some("&".into()),
                    b"lt" => Some("<".into()),
                    b"gt" => Some(">".into()),
                    b"quot" => Some("\"".into()),
                    b"apos" => Some("'".into()),
                    _ if entity.first() == Some(&b'#') => {
                        let digits = &entity[1..];
                        let code = if digits.first() == Some(&b'x') || digits.first() == Some(&b'X') {
                            u32::from_str_radix(&String::from_utf8_lossy(&digits[1..]), 16).ok()
                        } else {
                            String::from_utf8_lossy(digits).parse::<u32>().ok()
                        };
                        // NUL is excluded: XML 1.0 forbids it, and the text
                        // index reserves byte 0 for its end-markers.
                        code.filter(|&c| c != 0).and_then(char::from_u32).map(|c| c.to_string())
                    }
                    _ => None,
                };
                if let Some(rep) = replacement {
                    out.push_str(&rep);
                    i += end + 1;
                    continue;
                }
            }
            // Not a recognised entity: keep the ampersand literally.
            out.push('&');
            i += 1;
        } else {
            // Copy a run of plain bytes.
            let start = i;
            while i < raw.len() && raw[i] != b'&' {
                i += 1;
            }
            out.push_str(&String::from_utf8_lossy(&raw[start..i]));
        }
    }
    out
}

/// Escapes character data for serialization.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value for serialization (double-quoted context).
pub fn escape_attribute(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<Event> {
        let mut p = Parser::new(input.as_bytes());
        let mut out = Vec::new();
        loop {
            let e = p.next_event().expect("parse ok");
            let done = e == Event::Eof;
            out.push(e);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn simple_document() {
        let ev = events("<a><b>hi</b></a>");
        assert_eq!(
            ev,
            vec![
                Event::StartElement { name: "a".into(), attributes: vec![], self_closing: false },
                Event::StartElement { name: "b".into(), attributes: vec![], self_closing: false },
                Event::Text("hi".into()),
                Event::EndElement { name: "b".into() },
                Event::EndElement { name: "a".into() },
                Event::Eof,
            ]
        );
    }

    #[test]
    fn attributes_and_self_closing() {
        let ev = events(r#"<part name="pen" stock='40'><empty/></part>"#);
        assert_eq!(
            ev[0],
            Event::StartElement {
                name: "part".into(),
                attributes: vec![("name".into(), "pen".into()), ("stock".into(), "40".into())],
                self_closing: false,
            }
        );
        assert_eq!(
            ev[1],
            Event::StartElement { name: "empty".into(), attributes: vec![], self_closing: true }
        );
    }

    #[test]
    fn entities_are_resolved() {
        let ev = events("<a>x &amp; y &lt;z&gt; &#65;&#x42; &unknown;</a>");
        assert_eq!(ev[1], Event::Text("x & y <z> AB &unknown;".into()));
        let ev = events(r#"<a title="a &quot;b&quot;"/>"#);
        assert_eq!(
            ev[0],
            Event::StartElement {
                name: "a".into(),
                attributes: vec![("title".into(), "a \"b\"".into())],
                self_closing: true,
            }
        );
    }

    #[test]
    fn comments_pi_doctype_cdata() {
        let input = r#"<?xml version="1.0"?>
<!DOCTYPE parts [<!ELEMENT parts (part*)>]>
<!-- a comment -->
<parts><![CDATA[<raw> & data]]></parts>"#;
        let ev = events(input);
        let texts: Vec<&Event> = ev.iter().filter(|e| matches!(e, Event::Text(_))).collect();
        // Whitespace between constructs also shows up as text events.
        assert!(texts.iter().any(|e| matches!(e, Event::Text(t) if t == "<raw> & data")));
        assert!(ev.iter().any(|e| matches!(e, Event::StartElement { name, .. } if name == "parts")));
    }

    #[test]
    fn errors_are_reported() {
        let mut p = Parser::new(b"<a foo>");
        let mut last = Ok(Event::Eof);
        for _ in 0..3 {
            last = p.next_event();
            if last.is_err() {
                break;
            }
        }
        assert!(last.is_err());
        let mut p = Parser::new(b"<!-- never closed");
        assert!(p.next_event().is_err());
    }

    #[test]
    fn malformed_entities_are_literal() {
        // Empty numeric bodies, bare ampersands and out-of-range code points
        // all degrade to literal output, never a panic or a dropped byte.
        assert_eq!(unescape(b"&#;"), "&#;");
        assert_eq!(unescape(b"&#x;"), "&#x;");
        assert_eq!(unescape(b"&;"), "&;");
        assert_eq!(unescape(b"a & b && c"), "a & b && c");
        assert_eq!(unescape(b"trailing &"), "trailing &");
        assert_eq!(unescape(b"&#x110000;"), "&#x110000;"); // beyond char::MAX
        assert_eq!(unescape(b"&#0;"), "&#0;"); // NUL is not valid XML text
        assert_eq!(unescape(b"&#xD800;"), "&#xD800;"); // surrogate
        assert_eq!(unescape(b"&#9999999999;"), "&#9999999999;"); // overflows u32
        // Valid references still resolve, including heavily zero-padded
        // numeric forms the XML spec allows.
        assert_eq!(unescape(b"&#x0010FFFF;"), "\u{10FFFF}");
        assert_eq!(unescape(b"&#x000000000041;"), "A");
        assert_eq!(unescape(b"&#000000000065;"), "A");
        assert_eq!(unescape(b"&amp;&#65;"), "&A");
    }

    #[test]
    fn entity_lookahead_is_bounded() {
        // A semicolon far beyond an ampersand run must not turn every '&'
        // into a scan to the end of the run: the lookahead stops at the
        // first byte that cannot be part of an entity body, keeping
        // unescape linear.
        let mut input = vec![b'&'; 10_000];
        input.extend_from_slice(b" end;");
        let out = unescape(&input);
        assert_eq!(out.len(), input.len());
        assert!(out.starts_with("&&&&"));
        assert!(out.ends_with(" end;"));
        // A reference whose body contains a space was never recognised; the
        // bounded scan agrees.
        assert_eq!(unescape(b"&not an entity;"), "&not an entity;");
        assert_eq!(unescape(b"&unknownentityname;"), "&unknownentityname;");
    }

    #[test]
    fn escape_roundtrip() {
        let original = "a < b & c > d \"quoted\"";
        assert_eq!(unescape(escape_text(original).as_bytes()), original);
        assert_eq!(unescape(escape_attribute(original).as_bytes()), original);
    }

    #[test]
    fn unicode_text_passthrough() {
        let ev = events("<a>héllo wörld — ünïcode</a>");
        assert_eq!(ev[1], Event::Text("héllo wörld — ünïcode".into()));
    }
}
