//! The SXSI document model (Section 2 of the paper).
//!
//! An XML document is modelled as a labeled tree plus an ordered set of
//! texts:
//!
//! * an extra root labeled `&` is added above the document element;
//! * each non-empty character-data run becomes a leaf labeled `#` holding a
//!   text;
//! * a node with attributes gets a first child labeled `@`; below it, one
//!   child per attribute labeled with the attribute name, each with a `%`
//!   leaf holding the attribute value;
//! * texts receive consecutive identifiers in document order.
//!
//! [`parse_document`] performs a single pass over the input, producing the
//! succinct tree structure (via [`sxsi_tree::XmlTreeBuilder`]) and the list
//! of texts, ready to be handed to the text index.

use crate::parser::{Event, ParseError, Parser};
use sxsi_succinct::SuccinctOptions;
use sxsi_tree::{XmlTree, XmlTreeBuilder};

/// Options controlling model construction.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct DocumentOptions {
    /// Keep character-data runs that consist solely of whitespace.  The paper
    /// keeps them (they are part of the document); benchmarks usually drop
    /// them to focus on meaningful text.  Default: `false`.
    pub keep_whitespace_text: bool,
    /// Succinct backends used for the tree's bitmaps and tag-occurrence
    /// index.  Default: the interleaved-rank / wavelet-matrix pair.
    pub succinct: SuccinctOptions,
}


/// The parsed document: tree structure plus texts in document order.
#[derive(Debug, Clone)]
pub struct ParsedDocument {
    /// The succinct tree index.
    pub tree: XmlTree,
    /// The texts, in the same order as the tree's text leaves.
    pub texts: Vec<Vec<u8>>,
    /// Number of element nodes (excluding the synthetic `&`, `#`, `@`, `%`
    /// model nodes).
    pub num_elements: usize,
    /// Number of attributes.
    pub num_attributes: usize,
}

impl ParsedDocument {
    /// Borrowed view of the texts (convenient for the text-index builder).
    pub fn text_slices(&self) -> Vec<&[u8]> {
        self.texts.iter().map(|t| t.as_slice()).collect()
    }
}

/// Parses `input` into the SXSI document model with default options.
pub fn parse_document(input: &[u8]) -> Result<ParsedDocument, ParseError> {
    parse_document_with_options(input, &DocumentOptions::default())
}

/// Parses `input` into the SXSI document model.
pub fn parse_document_with_options(
    input: &[u8],
    options: &DocumentOptions,
) -> Result<ParsedDocument, ParseError> {
    let mut parser = Parser::new(input);
    let mut builder = XmlTreeBuilder::new();
    let mut texts: Vec<Vec<u8>> = Vec::new();
    let mut open_names: Vec<String> = Vec::new();
    let mut num_elements = 0usize;
    let mut num_attributes = 0usize;

    loop {
        match parser.next_event()? {
            Event::StartElement { name, attributes, self_closing } => {
                num_elements += 1;
                builder.open(&name);
                if !attributes.is_empty() {
                    builder.open("@");
                    // Ensure we reuse the reserved id for "@": the registry
                    // already knows it, `open` simply looks it up.
                    for (attr_name, value) in &attributes {
                        num_attributes += 1;
                        builder.open(attr_name);
                        builder.text_leaf(true);
                        texts.push(value.clone().into_bytes());
                        builder.close();
                    }
                    builder.close();
                }
                if self_closing {
                    builder.close();
                } else {
                    open_names.push(name);
                }
            }
            Event::EndElement { name } => {
                match open_names.pop() {
                    Some(open) if open == name => builder.close(),
                    Some(open) => {
                        return Err(ParseError {
                            position: parser.position(),
                            message: format!("mismatched end tag </{name}>, expected </{open}>"),
                        })
                    }
                    None => {
                        return Err(ParseError {
                            position: parser.position(),
                            message: format!("unexpected end tag </{name}>"),
                        })
                    }
                }
            }
            Event::Text(text) => {
                if open_names.is_empty() {
                    // Text outside the document element (prolog/epilog
                    // whitespace): ignore.
                    continue;
                }
                if text.is_empty() {
                    continue;
                }
                if !options.keep_whitespace_text && text.chars().all(char::is_whitespace) {
                    continue;
                }
                builder.text_leaf(false);
                texts.push(text.into_bytes());
            }
            Event::Eof => break,
        }
    }
    if let Some(open) = open_names.pop() {
        return Err(ParseError {
            position: parser.position(),
            message: format!("element <{open}> is never closed"),
        });
    }
    // The event loop above already rejects mismatched and unclosed tags, so
    // this cannot fail on parser output — but routing through `try_finish`
    // guarantees that no input, however malformed, can panic the process.
    let tree = builder.try_finish_with(options.succinct).map_err(|e| ParseError {
        position: parser.position(),
        message: format!("malformed tree structure: {e}"),
    })?;
    debug_assert_eq!(tree.num_texts(), texts.len(), "text leaves and texts must align");
    Ok(ParsedDocument { tree, texts, num_elements, num_attributes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsi_tree::reserved;

    /// The running example of Figure 1 in the paper.
    const FIGURE1: &str = r#"<parts>
<part name="pen">
   <color>blue</color>
   <stock>40</stock>
   Soon discontinued.
</part>
<part name="rubber">
   <stock>30</stock>
</part>
</parts>"#;

    #[test]
    fn figure1_model_counts() {
        let doc = parse_document(FIGURE1.as_bytes()).unwrap();
        // Texts: pen, blue, 40, "Soon discontinued.", rubber, 30 (whitespace dropped).
        assert_eq!(doc.texts.len(), 6);
        assert_eq!(doc.tree.num_texts(), 6);
        assert_eq!(doc.num_elements, 6); // parts, part, color, stock, part, stock
        assert_eq!(doc.num_attributes, 2);
    }

    #[test]
    fn figure1_with_whitespace_kept() {
        let opts = DocumentOptions { keep_whitespace_text: true, ..DocumentOptions::default() };
        let doc = parse_document_with_options(FIGURE1.as_bytes(), &opts).unwrap();
        // The paper notes seven whitespace-only texts in this document.
        assert_eq!(doc.texts.len(), 13);
    }

    #[test]
    fn figure1_structure_and_text_order() {
        let doc = parse_document(FIGURE1.as_bytes()).unwrap();
        let t = &doc.tree;
        let root = t.root();
        assert_eq!(t.tag_name(t.tag(root)), "&");
        let parts = t.first_child(root).unwrap();
        assert_eq!(t.tag_name(t.tag(parts)), "parts");
        let part1 = t.first_child(parts).unwrap();
        let kids: Vec<&str> = t.children(part1).map(|c| t.tag_name(t.tag(c))).collect();
        assert_eq!(kids, vec!["@", "color", "stock", "#"]);
        // Attribute structure below @.
        let at = t.first_child(part1).unwrap();
        assert_eq!(t.tag(at), reserved::ATTRIBUTES);
        let name_attr = t.first_child(at).unwrap();
        assert_eq!(t.tag_name(t.tag(name_attr)), "name");
        let value_leaf = t.first_child(name_attr).unwrap();
        assert_eq!(t.tag(value_leaf), reserved::ATTRIBUTE_VALUE);
        // Text order: pen, blue, 40, Soon discontinued., rubber, 30.
        let texts: Vec<String> =
            doc.texts.iter().map(|t| String::from_utf8(t.clone()).unwrap()).collect();
        assert_eq!(texts[0], "pen");
        assert_eq!(texts[1], "blue");
        assert_eq!(texts[2], "40");
        assert!(texts[3].contains("Soon discontinued."));
        assert_eq!(texts[4], "rubber");
        assert_eq!(texts[5], "30");
        // The text ids attached to the first part are 0..4.
        assert_eq!(t.text_ids(part1), 0..4);
    }

    #[test]
    fn empty_elements_have_no_texts() {
        let doc = parse_document(b"<a></a>").unwrap();
        assert_eq!(doc.texts.len(), 0);
        assert_eq!(doc.tree.num_nodes(), 2); // & and a
        let doc = parse_document(b"<a><b/><c/></a>").unwrap();
        assert_eq!(doc.tree.num_nodes(), 4);
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(parse_document(b"<a><b></a></b>").is_err());
        assert!(parse_document(b"<a>").is_err());
        assert!(parse_document(b"</a>").is_err());
    }

    #[test]
    fn mixed_content_keeps_every_run() {
        let doc = parse_document(b"<a>one<b>two</b>three</a>").unwrap();
        let texts: Vec<String> =
            doc.texts.iter().map(|t| String::from_utf8(t.clone()).unwrap()).collect();
        assert_eq!(texts, vec!["one", "two", "three"]);
        let t = &doc.tree;
        let a = t.first_child(t.root()).unwrap();
        let kids: Vec<&str> = t.children(a).map(|c| t.tag_name(t.tag(c))).collect();
        assert_eq!(kids, vec!["#", "b", "#"]);
    }

    #[test]
    fn prolog_comments_and_cdata() {
        let input = r#"<?xml version="1.0" encoding="UTF-8"?>
<!-- top comment -->
<doc><item id="1"><![CDATA[x < y]]></item></doc>"#;
        let doc = parse_document(input.as_bytes()).unwrap();
        assert_eq!(doc.texts.len(), 2); // the attribute value and the CDATA text
        assert_eq!(doc.texts[0], b"1");
        assert_eq!(doc.texts[1], b"x < y");
    }
}
