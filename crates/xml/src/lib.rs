//! XML parsing and the SXSI document model.
//!
//! This crate turns raw XML bytes into the two structures the SXSI index is
//! built from: the succinct tree (via [`sxsi_tree::XmlTreeBuilder`]) and the
//! ordered list of texts (handed to [`sxsi_text::TextCollection`]).
//!
//! * [`parser`] — a dependency-free SAX-style XML parser.
//! * [`document`] — the model of Section 2 (`&` root, `#` text leaves, `@`
//!   attribute containers, `%` attribute values) and [`parse_document`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod document;
pub mod parser;

pub use document::{parse_document, parse_document_with_options, DocumentOptions, ParsedDocument};
pub use parser::{escape_attribute, escape_text, unescape, Event, ParseError, Parser};
