//! Deep structural verification support for the SXSI index structures.
//!
//! The `.sxsi` container checksums bytes, and every `ReadFrom`
//! implementation re-validates the invariants it needs to run unchecked —
//! but neither guarantees that a *well-formed* file is *semantically
//! consistent*: a rank directory can disagree with its payload words, an
//! Elias-Fano sequence can decode to a non-monotone list, a relative
//! tag-position table can describe a different document than the
//! parenthesis sequence next to it.  This crate defines the small
//! vocabulary the index crates use to express and report those deep
//! checks: the [`Verify`] trait, the [`VerifyReport`] it produces, and the
//! [`VerifyContext`] accumulator that keeps a structure path so a finding
//! like `tree/bp/rmm-block-min` points at the exact component that drifted.
//!
//! Implementations live next to each structure (where its private fields
//! are visible), mirroring how the `WriteInto`/`ReadFrom` pairs are laid
//! out.  The top of the stack is `SxsiIndex::verify(depth)` in `sxsi-core`
//! and the `sxsi verify` CLI subcommand.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

/// How much work a verification pass is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerifyDepth {
    /// Structural checks that are linear in the *directory* sizes:
    /// recompute rank/select directories, level lengths, C-arrays,
    /// monotonicity of encoded sequences.  Fast enough for paranoid load.
    Quick,
    /// Everything in `Quick` plus semantic cross-structure checks that may
    /// replay whole sequences (tag-table reconstruction, FM-index locate
    /// walks against the plain store, per-sample position tracking).
    Deep,
}

impl VerifyDepth {
    /// Whether this depth includes the expensive semantic checks.
    #[inline]
    pub fn is_deep(self) -> bool {
        matches!(self, VerifyDepth::Deep)
    }
}

/// One verification finding: a stable kebab-case code plus the path of the
/// component it was found in and a human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyIssue {
    /// Stable machine-readable code (kebab-case), e.g. `rmm-block-min`.
    pub code: &'static str,
    /// Slash-separated path of the component, e.g. `tree/bp`.
    pub path: String,
    /// Human-readable description of the inconsistency.
    pub detail: String,
}

impl fmt::Display for VerifyIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error code={} path={} detail={}", self.code, self.path, self.detail)
    }
}

/// The outcome of a verification pass: every issue found, plus how many
/// individual checks ran (so "no issues" can be told apart from "nothing
/// was checked").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Every inconsistency found, in discovery order.
    pub issues: Vec<VerifyIssue>,
    /// Number of individual invariant checks that were evaluated.
    pub checks_run: usize,
}

impl VerifyReport {
    /// Whether the pass found no inconsistencies.
    pub fn is_ok(&self) -> bool {
        self.issues.is_empty()
    }

    /// Whether an issue with the given code was reported.
    pub fn has_code(&self, code: &str) -> bool {
        self.issues.iter().any(|i| i.code == code)
    }

    /// The distinct issue codes reported, in first-seen order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for issue in &self.issues {
            if !out.contains(&issue.code) {
                out.push(issue.code);
            }
        }
        out
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.issues.is_empty() {
            return write!(f, "ok checks={}", self.checks_run);
        }
        writeln!(f, "{} issue(s) in {} checks:", self.issues.len(), self.checks_run)?;
        for issue in &self.issues {
            writeln!(f, "{issue}")?;
        }
        Ok(())
    }
}

/// Accumulator passed through a verification pass: keeps the current
/// component path, counts checks, and records findings.
#[derive(Debug, Default)]
pub struct VerifyContext {
    path: Vec<&'static str>,
    issues: Vec<VerifyIssue>,
    checks_run: usize,
}

impl VerifyContext {
    /// Creates an empty context rooted at the top-level structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with `segment` pushed onto the component path.
    pub fn enter<F: FnOnce(&mut Self)>(&mut self, segment: &'static str, f: F) {
        self.path.push(segment);
        f(self);
        self.path.pop();
    }

    /// The current slash-separated component path.
    pub fn current_path(&self) -> String {
        self.path.join("/")
    }

    /// Records one evaluated check; when `ok` is false, records an issue
    /// with the given code and lazily-built detail.
    pub fn check(&mut self, code: &'static str, ok: bool, detail: impl FnOnce() -> String) {
        self.checks_run += 1;
        if !ok {
            self.issue(code, detail());
        }
    }

    /// Records an issue directly (for findings discovered outside a
    /// boolean check, e.g. while iterating).
    pub fn issue(&mut self, code: &'static str, detail: impl Into<String>) {
        self.issues.push(VerifyIssue { code, path: self.current_path(), detail: detail.into() });
    }

    /// Number of issues recorded so far.
    pub fn issue_count(&self) -> usize {
        self.issues.len()
    }

    /// Finishes the pass, producing the report.
    pub fn finish(self) -> VerifyReport {
        VerifyReport { issues: self.issues, checks_run: self.checks_run }
    }
}

/// Deep-invariant verification of a persisted structure.
///
/// `verify_into` appends findings to a shared [`VerifyContext`]; the
/// provided [`Verify::verify`] wraps it for standalone use.  Quick-depth
/// checks must be cheap enough for a paranoid load path; deep checks may
/// replay whole sequences.
pub trait Verify {
    /// Runs the structure's invariant checks, appending findings to `ctx`.
    fn verify_into(&self, depth: VerifyDepth, ctx: &mut VerifyContext);

    /// Runs the checks standalone and returns the report.
    fn verify(&self, depth: VerifyDepth) -> VerifyReport {
        let mut ctx = VerifyContext::new();
        self.verify_into(depth, &mut ctx);
        ctx.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Good;
    impl Verify for Good {
        fn verify_into(&self, _depth: VerifyDepth, ctx: &mut VerifyContext) {
            ctx.check("never", true, || unreachable!());
        }
    }

    struct Bad;
    impl Verify for Bad {
        fn verify_into(&self, depth: VerifyDepth, ctx: &mut VerifyContext) {
            ctx.enter("inner", |ctx| {
                ctx.check("always-wrong", false, || "it is wrong".into());
            });
            if depth.is_deep() {
                ctx.issue("deep-only", "found while replaying");
            }
        }
    }

    #[test]
    fn clean_report() {
        let report = Good.verify(VerifyDepth::Quick);
        assert!(report.is_ok());
        assert_eq!(report.checks_run, 1);
        assert_eq!(format!("{report}"), "ok checks=1");
    }

    #[test]
    fn findings_carry_path_and_code() {
        let report = Bad.verify(VerifyDepth::Quick);
        assert!(!report.is_ok());
        assert!(report.has_code("always-wrong"));
        assert!(!report.has_code("deep-only"));
        assert_eq!(report.issues[0].path, "inner");
        assert!(format!("{report}").contains("error code=always-wrong path=inner"));

        let deep = Bad.verify(VerifyDepth::Deep);
        assert_eq!(deep.codes(), vec!["always-wrong", "deep-only"]);
        assert!(VerifyDepth::Deep.is_deep() && !VerifyDepth::Quick.is_deep());
    }

    #[test]
    fn nested_paths_join_with_slashes() {
        let mut ctx = VerifyContext::new();
        ctx.enter("tree", |ctx| {
            ctx.enter("bp", |ctx| {
                assert_eq!(ctx.current_path(), "tree/bp");
                ctx.issue("x", "y");
            });
        });
        assert_eq!(ctx.finish().issues[0].path, "tree/bp");
    }
}
