//! Parallel batch query execution over one shared [`SxsiIndex`].
//!
//! The SXSI index is immutable after construction: every structure on the
//! read path (balanced parentheses, tag sequences, FM-index, automata) is
//! `Send + Sync`, and all per-query mutable state lives inside the
//! evaluator each run creates locally.  This crate exploits that shape: a
//! [`QueryBatch`] prepares a set of XPath queries once — each distinct
//! query string is compiled to a single shared [`Prepared`] statement, even
//! when it appears many times in the batch — and a [`BatchExecutor`] fans
//! the prepared queries out across a configurable `std::thread` pool, every
//! worker evaluating against the same shared index.  Results are identical
//! to sequential evaluation — parallelism is across queries, never within
//! one.
//!
//! Each [`QuerySpec`] carries its own [`QueryOptions`], so a batch can mix
//! existence probes, counts, and `limit`/`offset` windows; the early
//! termination of the underlying evaluators applies per spec.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use sxsi::{QueryOptions, SxsiIndex};
//! use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
//!
//! let xml = r#"<parts>
//!   <part name="pen"><color>blue</color><stock>40</stock></part>
//!   <part name="rubber"><stock>30</stock></part>
//! </parts>"#;
//! let index = Arc::new(SxsiIndex::build_from_xml(xml.as_bytes()).unwrap());
//!
//! let batch = QueryBatch::compile(
//!     &index,
//!     vec![
//!         QuerySpec::count("stocks", "//stock"),
//!         QuerySpec::exists("any-color", "//color"),
//!         QuerySpec::nodes("blue-parts", r#"//part[ .//color[ contains(., "blu") ] ]"#),
//!         QuerySpec::new("first-part", "//part", QueryOptions::nodes().with_limit(1)),
//!     ],
//! )
//! .unwrap();
//!
//! let results = BatchExecutor::new(2).run(&index, &batch);
//! assert_eq!(results[0].result.count(), 2);
//! assert!(results[1].result.exists());
//! assert_eq!(results[2].result.nodes().unwrap().len(), 1);
//! assert_eq!(results[3].result.cursor().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod collection;
pub mod search;
pub mod server;

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sxsi::{Prepared, QueryError, QueryOptions, ResultSet, SxsiIndex, Strategy};

/// One query of a batch: an identifier (echoed back on the result), the
/// XPath expression and the run options.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Caller-chosen identifier, copied onto the matching [`BatchResult`].
    pub id: String,
    /// The XPath Core+ expression.
    pub xpath: String,
    /// How the query runs: output mode, result window, statistics.
    pub options: QueryOptions,
}

impl QuerySpec {
    /// A query with explicit [`QueryOptions`].
    pub fn new(id: impl Into<String>, xpath: impl Into<String>, options: QueryOptions) -> Self {
        Self { id: id.into(), xpath: xpath.into(), options }
    }

    /// A counting query.
    pub fn count(id: impl Into<String>, xpath: impl Into<String>) -> Self {
        Self::new(id, xpath, QueryOptions::count())
    }

    /// An existence query (stops at the first match).
    pub fn exists(id: impl Into<String>, xpath: impl Into<String>) -> Self {
        Self::new(id, xpath, QueryOptions::exists())
    }

    /// A materializing query.
    pub fn nodes(id: impl Into<String>, xpath: impl Into<String>) -> Self {
        Self::new(id, xpath, QueryOptions::nodes())
    }
}

/// A query that failed to parse or compile, with its position in the batch.
#[derive(Debug)]
pub struct BatchError {
    /// The identifier of the offending [`QuerySpec`].
    pub id: String,
    /// The underlying parse/compile error.
    pub error: QueryError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query '{}': {}", self.id, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One entry of a batch: the spec plus the shared [`Prepared`] statement —
/// the same strategy choice sequential execution makes, made once per
/// *distinct* query string.
struct BatchQuery {
    spec: QuerySpec,
    prepared: Arc<Prepared>,
}

/// A set of queries prepared against one index, ready to be executed (any
/// number of times) by a [`BatchExecutor`].
///
/// Identical XPath strings are compiled once: all their specs share one
/// [`Prepared`] handle, so a batch of a thousand repetitions of one query
/// pays one parse/plan/compile.
///
/// Compilation is tied to the index it was performed against: tag
/// identifiers baked into the plans are only meaningful for that document.
/// Running a batch against a different index is a logic error (it cannot
/// crash, but the answers would be meaningless).
///
/// ```
/// use sxsi::SxsiIndex;
/// use sxsi_engine::{QueryBatch, QuerySpec};
///
/// let index = SxsiIndex::build_from_xml(b"<a><b>x</b><b/><c/></a>").unwrap();
/// let batch = QueryBatch::compile(
///     &index,
///     vec![
///         QuerySpec::count("bs", "//b"),
///         QuerySpec::count("first", "/a/*[1]"),     // positional → direct strategy
///         QuerySpec::nodes("bs-again", "//b"),      // same string: shared handle
///     ],
/// )
/// .unwrap();
/// assert_eq!(batch.len(), 3);
/// assert_eq!(batch.num_distinct(), 2);
/// ```
pub struct QueryBatch {
    queries: Vec<BatchQuery>,
    num_distinct: usize,
}

impl fmt::Debug for QueryBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.specs()).finish()
    }
}

impl QueryBatch {
    /// Parses, plans and compiles every *distinct* query string against
    /// `index` (through [`SxsiIndex::prepare`], so the strategy choice is
    /// exactly the one sequential execution makes); repeated strings share
    /// one [`Prepared`] handle.
    ///
    /// Fails on the first malformed query, identifying it by its `id`.
    pub fn compile(index: &SxsiIndex, specs: Vec<QuerySpec>) -> Result<Self, BatchError> {
        let mut prepared_by_xpath: HashMap<String, Arc<Prepared>> = HashMap::new();
        let mut queries = Vec::with_capacity(specs.len());
        for spec in specs {
            let prepared = match prepared_by_xpath.get(&spec.xpath) {
                Some(shared) => Arc::clone(shared),
                None => {
                    let prepared = index
                        .prepare(&spec.xpath)
                        .map(Arc::new)
                        .map_err(|error| BatchError { id: spec.id.clone(), error })?;
                    prepared_by_xpath.insert(spec.xpath.clone(), Arc::clone(&prepared));
                    prepared
                }
            };
            queries.push(BatchQuery { spec, prepared });
        }
        Ok(Self { queries, num_distinct: prepared_by_xpath.len() })
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Number of *distinct* query strings the batch compiled (each backed
    /// by one shared [`Prepared`] statement).
    pub fn num_distinct(&self) -> usize {
        self.num_distinct
    }

    /// The specs the batch was compiled from, in batch order.
    pub fn specs(&self) -> impl Iterator<Item = &QuerySpec> {
        self.queries.iter().map(|q| &q.spec)
    }

    /// Assembles a batch from already-prepared statements, bypassing
    /// compilation — the path a plan cache takes (see
    /// [`server::Server`]): specs whose `Prepared` handle survived in
    /// the cache are batched without re-paying parse/plan/compile.
    ///
    /// Each pair couples one spec with the statement to run it on; as
    /// with [`QueryBatch::compile`], a statement is only meaningful for
    /// the index it was prepared against.
    pub fn from_prepared(queries: Vec<(QuerySpec, Arc<Prepared>)>) -> Self {
        let num_distinct = {
            let mut seen = std::collections::HashSet::new();
            queries.iter().filter(|(spec, _)| seen.insert(spec.xpath.as_str())).count()
        };
        Self {
            queries: queries
                .into_iter()
                .map(|(spec, prepared)| BatchQuery { spec, prepared })
                .collect(),
            num_distinct,
        }
    }
}

/// The result of one batch query.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The identifier of the originating [`QuerySpec`].
    pub id: String,
    /// The strategy the planner chose at prepare time.
    pub strategy: Strategy,
    /// The run's [`ResultSet`] — identical to what a sequential
    /// [`Prepared::run`] produces.
    pub result: ResultSet,
    /// Wall-clock time this query's evaluation took on its worker
    /// thread (just the [`Prepared::run`] call — queueing, spawn and
    /// join overhead excluded), so per-query latency stays exact even
    /// through the batch fan-out.
    pub elapsed: Duration,
}

/// Fans a [`QueryBatch`] out across a pool of `std::thread` workers sharing
/// one immutable index.
///
/// Work distribution is dynamic: workers claim the next unstarted query
/// through an atomic cursor, so a batch mixing cheap and expensive queries
/// stays balanced.  Results are returned in batch order regardless of
/// completion order.
///
/// ```
/// use sxsi::SxsiIndex;
/// use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
///
/// let index = SxsiIndex::build_from_xml(b"<a><b>x</b><b/><c/></a>").unwrap();
/// let batch = QueryBatch::compile(
///     &index,
///     vec![QuerySpec::count("bs", "//b"), QuerySpec::count("last", "/a/*[last()]")],
/// )
/// .unwrap();
///
/// // Results are identical at every pool size, in batch order.
/// let sequential = BatchExecutor::new(1).run(&index, &batch);
/// let parallel = BatchExecutor::new(4).run(&index, &batch);
/// assert_eq!(sequential[0].result.count(), 2);
/// assert_eq!(sequential[1].result.count(), 1);
/// assert_eq!(parallel[0].result.count(), sequential[0].result.count());
/// assert_eq!(parallel[1].result.count(), sequential[1].result.count());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    threads: usize,
}

impl BatchExecutor {
    /// An executor with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every query of `batch` against `index`, returning one result per
    /// query in batch order.
    ///
    /// The index is borrowed for the duration of the call; callers holding
    /// an `Arc<SxsiIndex>` pass `&arc` (auto-deref).  With one worker the
    /// pool is bypassed and the batch runs on the calling thread.
    ///
    /// Workers are spawned afresh on every call (`std::thread::scope`), so
    /// each run pays roughly tens of microseconds per worker in spawn/join
    /// overhead; batches should be large enough to amortize that.  For
    /// very small batches of cheap queries, fewer threads (or `new(1)`)
    /// can be faster than a wide pool.
    pub fn run(&self, index: &SxsiIndex, batch: &QueryBatch) -> Vec<BatchResult> {
        self.run_jobs(batch.len(), |i| run_one(index, &batch.queries[i]))
    }

    /// The pool's generic fan-out: runs `count` jobs, each identified by
    /// its index, and returns their results in job order.  This is the
    /// engine shared by [`BatchExecutor::run`] (one job per batch query)
    /// and the collection executor (one job per document shard); work
    /// distribution is dynamic via an atomic claim cursor, and with one
    /// effective worker the jobs run on the calling thread.
    pub(crate) fn run_jobs<R, F>(&self, count: usize, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(count.max(1));
        if workers <= 1 {
            return (0..count).map(&job).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::new();
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let job = &job;
                    scope.spawn(move || {
                        let mut produced = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= count {
                                break;
                            }
                            produced.push((i, job(i)));
                        }
                        produced
                    })
                })
                .collect();
            slots.resize_with(count, || None);
            for handle in handles {
                let produced = handle.join().expect("batch worker panicked");
                for (i, result) in produced {
                    slots[i] = Some(result);
                }
            }
        });
        slots.into_iter().map(|r| r.expect("every job was claimed by a worker")).collect()
    }
}

/// Evaluates one prepared query; this is the only code a worker thread
/// runs, and all mutable state (the evaluator inside [`Prepared::run`]) is
/// allocated locally.
fn run_one(index: &SxsiIndex, query: &BatchQuery) -> BatchResult {
    let start = Instant::now();
    let result = query.prepared.run(index, &query.spec.options);
    let elapsed = start.elapsed();
    BatchResult { id: query.spec.id.clone(), strategy: query.prepared.strategy(), result, elapsed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsi::QueryMode;

    const DOC: &str = r#"<site>
  <regions>
    <africa><item id="i1"><name>drum</name><description>
      <parlist><listitem><text>a <keyword>rare</keyword> drum <emph>loud</emph></text></listitem>
      <listitem><keyword>old</keyword></listitem></parlist>
    </description></item></africa>
    <europe><item id="i2"><name>violin</name><description>classic string instrument</description></item></europe>
  </regions>
  <people>
    <person id="p1"><name>Alice</name><address>Oak street</address><phone>123</phone></person>
    <person id="p2"><name>Bob</name><homepage>http://b.example</homepage></person>
  </people>
</site>"#;

    fn index() -> Arc<SxsiIndex> {
        Arc::new(SxsiIndex::build_from_xml(DOC.as_bytes()).unwrap())
    }

    fn specs() -> Vec<QuerySpec> {
        vec![
            QuerySpec::count("keywords", "//keyword"),
            QuerySpec::nodes("items", "/site/regions/*/item"),
            QuerySpec::count("people", "/site/people/person[ phone or homepage]/name"),
            QuerySpec::nodes("alice", r#"//person[ .//name[ . = "Alice" ] ]"#),
            QuerySpec::count("all", "//*"),
            QuerySpec::nodes("texts", "/descendant::text()"),
            QuerySpec::exists("any-person", "//person"),
            QuerySpec::new("first-two", "//item", QueryOptions::nodes().with_limit(2)),
        ]
    }

    #[test]
    fn results_match_sequential_execution_at_every_thread_count() {
        let index = index();
        let batch = QueryBatch::compile(&index, specs()).unwrap();
        let reference = BatchExecutor::new(1).run(&index, &batch);
        for threads in [2, 3, 8] {
            let parallel = BatchExecutor::new(threads).run(&index, &batch);
            assert_eq!(parallel.len(), reference.len());
            for (p, r) in parallel.iter().zip(&reference) {
                assert_eq!(p.id, r.id);
                assert_eq!(p.strategy, r.strategy);
                assert_eq!(p.result.count(), r.result.count(), "query '{}'", p.id);
                assert_eq!(p.result.nodes(), r.result.nodes(), "query '{}'", p.id);
                assert_eq!(p.result.exists(), r.result.exists(), "query '{}'", p.id);
            }
        }
    }

    #[test]
    fn results_match_sequential_prepared_runs() {
        let index = index();
        let batch = QueryBatch::compile(&index, specs()).unwrap();
        let results = BatchExecutor::new(4).run(&index, &batch);
        for (spec, result) in specs().iter().zip(&results) {
            let expected = index.run(&spec.xpath, &spec.options).unwrap();
            assert_eq!(result.result.count(), expected.count(), "query '{}'", spec.id);
            assert_eq!(result.result.nodes(), expected.nodes(), "query '{}'", spec.id);
            assert_eq!(result.strategy, expected.strategy(), "query '{}'", spec.id);
        }
    }

    #[test]
    fn identical_queries_share_one_prepared_statement() {
        let index = index();
        let batch = QueryBatch::compile(
            &index,
            vec![
                QuerySpec::count("a", "//keyword"),
                QuerySpec::nodes("b", "//keyword"),
                QuerySpec::exists("c", "//keyword"),
                QuerySpec::new("d", "//keyword", QueryOptions::nodes().with_limit(1)),
                QuerySpec::count("e", "//person"),
            ],
        )
        .unwrap();
        assert_eq!(batch.len(), 5);
        assert_eq!(batch.num_distinct(), 2);
        // The shared handle still honors each spec's own options.
        let results = BatchExecutor::new(2).run(&index, &batch);
        assert_eq!(results[0].result.count(), 2);
        assert_eq!(results[1].result.nodes().unwrap().len(), 2);
        assert!(results[2].result.exists());
        assert_eq!(results[3].result.nodes().unwrap().len(), 1);
        assert_eq!(results[4].result.count(), 2);
    }

    #[test]
    fn planner_choice_is_preserved() {
        let index = index();
        let batch = QueryBatch::compile(
            &index,
            vec![
                QuerySpec::count("bottom-up", r#"//person[ .//name[ . = "Alice" ] ]"#),
                QuerySpec::count("top-down", "//keyword"),
            ],
        )
        .unwrap();
        let results = BatchExecutor::new(2).run(&index, &batch);
        assert_eq!(results[0].strategy, Strategy::BottomUp);
        assert_eq!(results[1].strategy, Strategy::TopDown);
        assert_eq!(results[0].result.count(), 1);
        assert_eq!(results[1].result.count(), 2);
    }

    #[test]
    fn index_can_be_shared_across_plain_spawned_threads() {
        let index = index();
        let batch = Arc::new(QueryBatch::compile(&index, specs()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let index = Arc::clone(&index);
                let batch = Arc::clone(&batch);
                std::thread::spawn(move || BatchExecutor::new(2).run(&index, &batch))
            })
            .collect();
        let reference = BatchExecutor::new(1).run(&index, &batch);
        for handle in handles {
            let results = handle.join().unwrap();
            for (p, r) in results.iter().zip(&reference) {
                assert_eq!(p.result.count(), r.result.count());
                assert_eq!(p.result.nodes(), r.result.nodes());
            }
        }
    }

    #[test]
    fn compile_errors_identify_the_query() {
        let index = index();
        let err = QueryBatch::compile(
            &index,
            vec![QuerySpec::count("good", "//keyword"), QuerySpec::count("bad", "keyword")],
        )
        .unwrap_err();
        assert_eq!(err.id, "bad");
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn empty_batch_and_oversized_pool_are_fine() {
        let index = index();
        let empty = QueryBatch::compile(&index, Vec::new()).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.num_distinct(), 0);
        assert!(BatchExecutor::new(8).run(&index, &empty).is_empty());
        let one = QueryBatch::compile(&index, vec![QuerySpec::count("k", "//keyword")]).unwrap();
        assert_eq!(one.len(), 1);
        let results = BatchExecutor::new(64).run(&index, &one);
        assert_eq!(results[0].result.count(), 2);
    }

    #[test]
    fn batch_options_window_results() {
        let index = index();
        let full = index.materialize("//*").unwrap();
        let batch = QueryBatch::compile(
            &index,
            vec![
                QuerySpec::new("w", "//*", QueryOptions::nodes().with_limit(4).with_offset(3)),
                QuerySpec::new(
                    "c",
                    "//*",
                    QueryOptions { mode: QueryMode::Count, limit: Some(4), offset: 3, collect_stats: true },
                ),
            ],
        )
        .unwrap();
        let results = BatchExecutor::new(2).run(&index, &batch);
        assert_eq!(results[0].result.nodes().unwrap(), &full[3..7]);
        assert_eq!(results[1].result.count(), 4);
    }
}
