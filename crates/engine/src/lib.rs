//! Parallel batch query execution over one shared [`SxsiIndex`].
//!
//! The SXSI index is immutable after construction: every structure on the
//! read path (balanced parentheses, tag sequences, FM-index, automata) is
//! `Send + Sync`, and all per-query mutable state (the memoization table,
//! predicate caches, statistics) lives inside the per-thread
//! [`Evaluator`](sxsi_xpath::eval::Evaluator).  This crate exploits that
//! shape: a [`QueryBatch`] compiles a set of XPath queries once, and a
//! [`BatchExecutor`] fans the compiled queries out across a configurable
//! `std::thread` pool, every worker evaluating against the same shared
//! index.  Results are identical to sequential evaluation — parallelism is
//! across queries, never within one.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use sxsi::SxsiIndex;
//! use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
//!
//! let xml = r#"<parts>
//!   <part name="pen"><color>blue</color><stock>40</stock></part>
//!   <part name="rubber"><stock>30</stock></part>
//! </parts>"#;
//! let index = Arc::new(SxsiIndex::build_from_xml(xml.as_bytes()).unwrap());
//!
//! let batch = QueryBatch::compile(
//!     &index,
//!     vec![
//!         QuerySpec::count("stocks", "//stock"),
//!         QuerySpec::materialize("blue-parts", r#"//part[ .//color[ contains(., "blu") ] ]"#),
//!     ],
//! )
//! .unwrap();
//!
//! let results = BatchExecutor::new(2).run(&index, &batch);
//! assert_eq!(results[0].output.count(), 2);
//! assert_eq!(results[1].output.nodes().unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use sxsi::{CompiledPlan, QueryError, SxsiIndex, Strategy};
use sxsi_xpath::eval::{EvalStats, Output};

/// How one batch query produces its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Return only the number of selected nodes (Section 5.5.3 counters).
    Count,
    /// Materialize the selected nodes in document order.
    Materialize,
}

/// One query of a batch: an identifier (echoed back on the result), the
/// XPath expression and the output mode.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Caller-chosen identifier, copied onto the matching [`BatchResult`].
    pub id: String,
    /// The XPath Core+ expression.
    pub xpath: String,
    /// Counting or materializing evaluation.
    pub mode: BatchMode,
}

impl QuerySpec {
    /// A counting query.
    pub fn count(id: impl Into<String>, xpath: impl Into<String>) -> Self {
        Self { id: id.into(), xpath: xpath.into(), mode: BatchMode::Count }
    }

    /// A materializing query.
    pub fn materialize(id: impl Into<String>, xpath: impl Into<String>) -> Self {
        Self { id: id.into(), xpath: xpath.into(), mode: BatchMode::Materialize }
    }
}

/// A query that failed to parse or compile, with its position in the batch.
#[derive(Debug)]
pub struct BatchError {
    /// The identifier of the offending [`QuerySpec`].
    pub id: String,
    /// The underlying parse/compile error.
    pub error: QueryError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query '{}': {}", self.id, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One compiled query of a batch: the spec plus the frozen
/// [`CompiledPlan`] — the same strategy choice [`SxsiIndex::execute`]
/// makes, made once so repeated batch runs (and every worker thread) skip
/// parsing, planning and compilation.
struct CompiledQuery {
    spec: QuerySpec,
    plan: CompiledPlan,
}

/// A set of queries compiled against one index, ready to be executed (any
/// number of times) by a [`BatchExecutor`].
///
/// Compilation is tied to the index it was performed against: tag
/// identifiers baked into the automata are only meaningful for that
/// document.  Running a batch against a different index is a logic error
/// (it cannot crash, but the answers would be meaningless).
///
/// ```
/// use sxsi::SxsiIndex;
/// use sxsi_engine::{QueryBatch, QuerySpec};
///
/// let index = SxsiIndex::build_from_xml(b"<a><b>x</b><b/><c/></a>").unwrap();
/// let batch = QueryBatch::compile(
///     &index,
///     vec![
///         QuerySpec::count("bs", "//b"),
///         QuerySpec::count("first", "/a/*[1]"),           // positional → direct strategy
///         QuerySpec::materialize("parents", "//b/.."),    // rewritten forward
///     ],
/// )
/// .unwrap();
/// assert_eq!(batch.len(), 3);
/// assert_eq!(batch.specs().count(), 3);
/// ```
pub struct QueryBatch {
    queries: Vec<CompiledQuery>,
}

impl fmt::Debug for QueryBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.specs()).finish()
    }
}

impl QueryBatch {
    /// Parses, plans and compiles every spec against `index` (through
    /// [`SxsiIndex::compile`], so the strategy choice is exactly the one
    /// sequential execution makes).
    ///
    /// Fails on the first malformed query, identifying it by its `id`.
    pub fn compile(index: &SxsiIndex, specs: Vec<QuerySpec>) -> Result<Self, BatchError> {
        let mut queries = Vec::with_capacity(specs.len());
        for spec in specs {
            let plan = index
                .parse(&spec.xpath)
                .and_then(|query| index.compile(&query))
                .map_err(|error| BatchError { id: spec.id.clone(), error })?;
            queries.push(CompiledQuery { spec, plan });
        }
        Ok(Self { queries })
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The specs the batch was compiled from, in batch order.
    pub fn specs(&self) -> impl Iterator<Item = &QuerySpec> {
        self.queries.iter().map(|q| &q.spec)
    }
}

/// The result of one batch query.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The identifier of the originating [`QuerySpec`].
    pub id: String,
    /// The strategy the planner chose at compile time.
    pub strategy: Strategy,
    /// Count or materialized nodes — identical to what a sequential
    /// [`Evaluator`](sxsi_xpath::eval::Evaluator) run produces.
    pub output: Output,
    /// Evaluator statistics (zeroed for bottom-up runs, as in
    /// [`SxsiIndex::execute`]).
    pub stats: EvalStats,
}

/// Fans a [`QueryBatch`] out across a pool of `std::thread` workers sharing
/// one immutable index.
///
/// Work distribution is dynamic: workers claim the next unstarted query
/// through an atomic cursor, so a batch mixing cheap and expensive queries
/// stays balanced.  Results are returned in batch order regardless of
/// completion order.
///
/// ```
/// use sxsi::SxsiIndex;
/// use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
///
/// let index = SxsiIndex::build_from_xml(b"<a><b>x</b><b/><c/></a>").unwrap();
/// let batch = QueryBatch::compile(
///     &index,
///     vec![QuerySpec::count("bs", "//b"), QuerySpec::count("last", "/a/*[last()]")],
/// )
/// .unwrap();
///
/// // Results are identical at every pool size, in batch order.
/// let sequential = BatchExecutor::new(1).run(&index, &batch);
/// let parallel = BatchExecutor::new(4).run(&index, &batch);
/// assert_eq!(sequential[0].output.count(), 2);
/// assert_eq!(sequential[1].output.count(), 1);
/// assert_eq!(parallel[0].output, sequential[0].output);
/// assert_eq!(parallel[1].output, sequential[1].output);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    threads: usize,
}

impl BatchExecutor {
    /// An executor with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every query of `batch` against `index`, returning one result per
    /// query in batch order.
    ///
    /// The index is borrowed for the duration of the call; callers holding
    /// an `Arc<SxsiIndex>` pass `&arc` (auto-deref).  With one worker the
    /// pool is bypassed and the batch runs on the calling thread.
    ///
    /// Workers are spawned afresh on every call (`std::thread::scope`), so
    /// each run pays roughly tens of microseconds per worker in spawn/join
    /// overhead; batches should be large enough to amortize that.  For
    /// very small batches of cheap queries, fewer threads (or `new(1)`)
    /// can be faster than a wide pool.
    pub fn run(&self, index: &SxsiIndex, batch: &QueryBatch) -> Vec<BatchResult> {
        let workers = self.threads.min(batch.len().max(1));
        if workers <= 1 {
            return batch.queries.iter().map(|q| run_one(index, q)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<BatchResult>> = Vec::new();
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut produced = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(query) = batch.queries.get(i) else { break };
                            produced.push((i, run_one(index, query)));
                        }
                        produced
                    })
                })
                .collect();
            slots.resize_with(batch.len(), || None);
            for handle in handles {
                let produced = handle.join().expect("batch worker panicked");
                for (i, result) in produced {
                    slots[i] = Some(result);
                }
            }
        });
        slots.into_iter().map(|r| r.expect("every query was claimed by a worker")).collect()
    }
}

/// Evaluates one compiled query; this is the only code a worker thread
/// runs, and all mutable state (the evaluator inside
/// [`SxsiIndex::execute_compiled`]) is allocated locally.
fn run_one(index: &SxsiIndex, query: &CompiledQuery) -> BatchResult {
    let counting = query.spec.mode == BatchMode::Count;
    let result = index.execute_compiled(&query.plan, counting);
    BatchResult {
        id: query.spec.id.clone(),
        strategy: result.strategy,
        output: result.output,
        stats: result.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const DOC: &str = r#"<site>
  <regions>
    <africa><item id="i1"><name>drum</name><description>
      <parlist><listitem><text>a <keyword>rare</keyword> drum <emph>loud</emph></text></listitem>
      <listitem><keyword>old</keyword></listitem></parlist>
    </description></item></africa>
    <europe><item id="i2"><name>violin</name><description>classic string instrument</description></item></europe>
  </regions>
  <people>
    <person id="p1"><name>Alice</name><address>Oak street</address><phone>123</phone></person>
    <person id="p2"><name>Bob</name><homepage>http://b.example</homepage></person>
  </people>
</site>"#;

    fn index() -> Arc<SxsiIndex> {
        Arc::new(SxsiIndex::build_from_xml(DOC.as_bytes()).unwrap())
    }

    fn specs() -> Vec<QuerySpec> {
        vec![
            QuerySpec::count("keywords", "//keyword"),
            QuerySpec::materialize("items", "/site/regions/*/item"),
            QuerySpec::count("people", "/site/people/person[ phone or homepage]/name"),
            QuerySpec::materialize("alice", r#"//person[ .//name[ . = "Alice" ] ]"#),
            QuerySpec::count("all", "//*"),
            QuerySpec::materialize("texts", "/descendant::text()"),
        ]
    }

    #[test]
    fn results_match_sequential_execution_at_every_thread_count() {
        let index = index();
        let batch = QueryBatch::compile(&index, specs()).unwrap();
        let reference = BatchExecutor::new(1).run(&index, &batch);
        for threads in [2, 3, 8] {
            let parallel = BatchExecutor::new(threads).run(&index, &batch);
            assert_eq!(parallel.len(), reference.len());
            for (p, r) in parallel.iter().zip(&reference) {
                assert_eq!(p.id, r.id);
                assert_eq!(p.strategy, r.strategy);
                assert_eq!(p.output, r.output, "query '{}' with {threads} threads", p.id);
            }
        }
    }

    #[test]
    fn results_match_index_execute() {
        let index = index();
        let batch = QueryBatch::compile(&index, specs()).unwrap();
        let results = BatchExecutor::new(4).run(&index, &batch);
        for (spec, result) in specs().iter().zip(&results) {
            let counting = spec.mode == BatchMode::Count;
            let expected = index.execute(&spec.xpath, counting).unwrap();
            assert_eq!(result.output, expected.output, "query '{}'", spec.id);
            assert_eq!(result.strategy, expected.strategy, "query '{}'", spec.id);
        }
    }

    #[test]
    fn planner_choice_is_preserved() {
        let index = index();
        let batch = QueryBatch::compile(
            &index,
            vec![
                QuerySpec::count("bottom-up", r#"//person[ .//name[ . = "Alice" ] ]"#),
                QuerySpec::count("top-down", "//keyword"),
            ],
        )
        .unwrap();
        let results = BatchExecutor::new(2).run(&index, &batch);
        assert_eq!(results[0].strategy, Strategy::BottomUp);
        assert_eq!(results[1].strategy, Strategy::TopDown);
        assert_eq!(results[0].output.count(), 1);
        assert_eq!(results[1].output.count(), 2);
    }

    #[test]
    fn index_can_be_shared_across_plain_spawned_threads() {
        let index = index();
        let batch = Arc::new(QueryBatch::compile(&index, specs()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let index = Arc::clone(&index);
                let batch = Arc::clone(&batch);
                std::thread::spawn(move || BatchExecutor::new(2).run(&index, &batch))
            })
            .collect();
        let reference = BatchExecutor::new(1).run(&index, &batch);
        for handle in handles {
            let results = handle.join().unwrap();
            for (p, r) in results.iter().zip(&reference) {
                assert_eq!(p.output, r.output);
            }
        }
    }

    #[test]
    fn compile_errors_identify_the_query() {
        let index = index();
        let err = QueryBatch::compile(
            &index,
            vec![QuerySpec::count("good", "//keyword"), QuerySpec::count("bad", "keyword")],
        )
        .unwrap_err();
        assert_eq!(err.id, "bad");
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn empty_batch_and_oversized_pool_are_fine() {
        let index = index();
        let empty = QueryBatch::compile(&index, Vec::new()).unwrap();
        assert!(empty.is_empty());
        assert!(BatchExecutor::new(8).run(&index, &empty).is_empty());
        let one = QueryBatch::compile(&index, vec![QuerySpec::count("k", "//keyword")]).unwrap();
        assert_eq!(one.len(), 1);
        let results = BatchExecutor::new(64).run(&index, &one);
        assert_eq!(results[0].output.count(), 2);
    }
}
