//! The `sxsi` command-line tool: build, query and inspect `.sxsi` index
//! files.
//!
//! ```text
//! sxsi build  <input.xml> <output.sxsi> [--sample-rate N] [--no-plain-text]
//!             [--scan-cutoff N] [--keep-whitespace]
//! sxsi query  <index.sxsi> <xpath> [<xpath> ...] [--materialize] [--serialize]
//!             [--limit N] [--offset N] [--threads N]
//! sxsi exists <index.sxsi> <xpath> [<xpath> ...] [--threads N]
//! sxsi info   <index.sxsi>
//! ```
//!
//! `build` parses the XML once and writes the versioned binary container;
//! `query` loads the container (no re-parsing, no BWT reconstruction) and
//! runs the given XPath expressions through the parallel
//! [`BatchExecutor`] (counts by default; `--limit`/`--offset` select a
//! document-order result window with early termination); `exists` answers
//! existence only, stopping at the first match; `info` prints the stats a
//! capacity planner needs (node/text/tag counts and per-component sizes).
//!
//! Exit codes (documented in `docs/guide.md`):
//!
//! * `0` — success (`exists`: every query matched at least one node)
//! * `1` — runtime failure (missing files, corrupt indexes, parse errors)
//! * `2` — usage error (unknown flags, missing operands)
//! * `3` — a query parsed but compiles to a shape this engine does not
//!   support; stderr carries a structured
//!   `sxsi: error=unsupported-query query='…' detail='…'` line
//! * `4` — `exists` ran fine but at least one query matched nothing

use std::process::ExitCode;
use std::time::Instant;

use sxsi::{QueryError, QueryOptions, SxsiIndex, SxsiOptions};
use sxsi_engine::{BatchError, BatchExecutor, QueryBatch, QuerySpec};

const USAGE: &str = "\
usage:
  sxsi build  <input.xml> <output.sxsi> [--sample-rate N] [--no-plain-text]
              [--scan-cutoff N] [--keep-whitespace]
  sxsi query  <index.sxsi> <xpath> [<xpath> ...] [--materialize] [--serialize]
              [--limit N] [--offset N] [--threads N]
  sxsi exists <index.sxsi> <xpath> [<xpath> ...] [--threads N]
  sxsi info   <index.sxsi>

subcommands:
  build   parse the XML document and write a versioned .sxsi index file
  query   load a .sxsi file and run XPath queries (counts by default)
  exists  report true/false per query, stopping at the first match
  info    print size and cardinality statistics of a .sxsi file

build options:
  --sample-rate N    locate sampling step (default 64; smaller = faster
                     locate, larger = smaller index)
  --no-plain-text    drop the plain text copy (smaller index, slower
                     extraction and no scan cut-off)
  --scan-cutoff N    occurrence count above which contains() scans the plain
                     text instead of FM-locating (default 50000)
  --keep-whitespace  keep whitespace-only text nodes

query options:
  --materialize      print the selected node identifiers, not just counts
  --serialize        print the XML serialization of every selected node
  --limit N          produce at most N result nodes (document order; the
                     evaluators stop early once the window is complete)
  --offset N         skip the first N result nodes (pagination)
  --threads N        worker threads for multi-query batches (default 1)

exit codes: 0 success, 1 runtime failure, 2 usage error,
            3 unsupported query shape, 4 exists found no match

`sxsi query --help` additionally prints the supported XPath fragment.
";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("sxsi: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("sxsi: {message}");
    ExitCode::FAILURE
}

/// Reports a query that failed to prepare.  Parse errors are ordinary
/// runtime failures (exit 1); queries that parse but compile to a shape the
/// engine does not support exit with the distinct code 3 and a structured
/// stderr line, so callers can tell "fix the query" apart from "engine
/// limitation".
fn fail_prepare(err: BatchError) -> ExitCode {
    match &err.error {
        QueryError::Compile(e) => {
            eprintln!(
                "sxsi: error=unsupported-query query='{}' detail='{}'",
                err.id, e
            );
            ExitCode::from(3)
        }
        _ => fail(err),
    }
}

/// Prints usage plus the XPath fragment summary.  The summary is generated
/// by `sxsi_xpath::fragment_help` from the parser's own axis table, so this
/// help text cannot drift from what the parser accepts.
fn print_help() -> ExitCode {
    println!("{USAGE}\n{}", sxsi_xpath::fragment_help());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return print_help();
    }
    match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("exists") => cmd_exists(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("help") => print_help(),
        Some(other) => usage_error(&format!("unknown subcommand '{other}'")),
        None => usage_error("missing subcommand"),
    }
}

fn parse_number(args: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, String> {
    args.next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("{flag} expects a positive integer"))
}

fn cmd_build(args: &[String]) -> ExitCode {
    let mut options = SxsiOptions::default();
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sample-rate" => match parse_number(&mut it, "--sample-rate") {
                Ok(n) if n > 0 => options.text.sample_rate = n,
                Ok(_) | Err(_) => return usage_error("--sample-rate expects a positive integer"),
            },
            "--scan-cutoff" => match parse_number(&mut it, "--scan-cutoff") {
                Ok(n) => options.text.scan_cutoff = n,
                Err(e) => return usage_error(&e),
            },
            "--no-plain-text" => options.text.keep_plain_text = false,
            "--keep-whitespace" => options.keep_whitespace_text = true,
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => paths.push(arg),
        }
    }
    let [input, output] = paths[..] else {
        return usage_error("build expects <input.xml> and <output.sxsi>");
    };

    let xml = match std::fs::read(input) {
        Ok(xml) => xml,
        Err(e) => return fail(format_args!("cannot read {input}: {e}")),
    };
    let start = Instant::now();
    let index = match SxsiIndex::build_from_xml_with_options(&xml, options) {
        Ok(index) => index,
        Err(e) => return fail(e),
    };
    let build_time = start.elapsed();
    let start = Instant::now();
    if let Err(e) = index.save_to_file(output) {
        return fail(format_args!("cannot write {output}: {e}"));
    }
    let write_time = start.elapsed();

    let stats = index.stats();
    let file_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    println!("indexed {input} ({} bytes of XML) in {build_time:.2?}", xml.len());
    println!(
        "  {} nodes, {} elements, {} texts, {} tags",
        stats.num_nodes, stats.num_elements, stats.num_texts, stats.num_tags
    );
    println!(
        "  in-memory {} bytes (tree {} + text index {} + plain text {})",
        stats.total_bytes(),
        stats.tree_bytes,
        stats.text_index_bytes,
        stats.plain_text_bytes
    );
    println!("wrote {output} ({file_bytes} bytes) in {write_time:.2?}");
    ExitCode::SUCCESS
}

fn cmd_query(args: &[String]) -> ExitCode {
    let mut materialize = false;
    let mut serialize = false;
    let mut threads = 1usize;
    let mut limit: Option<u64> = None;
    let mut offset = 0u64;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--materialize" => materialize = true,
            "--serialize" => serialize = true,
            "--threads" => match parse_number(&mut it, "--threads") {
                Ok(n) if n > 0 => threads = n,
                Ok(_) | Err(_) => return usage_error("--threads expects a positive integer"),
            },
            "--limit" => match parse_number(&mut it, "--limit") {
                Ok(n) => limit = Some(n as u64),
                Err(e) => return usage_error(&e),
            },
            "--offset" => match parse_number(&mut it, "--offset") {
                Ok(n) => offset = n as u64,
                Err(e) => return usage_error(&e),
            },
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => positional.push(arg),
        }
    }
    let Some((path, queries)) = positional.split_first() else {
        return usage_error("query expects <index.sxsi> and at least one XPath expression");
    };
    if queries.is_empty() {
        return usage_error("query expects at least one XPath expression");
    }

    let start = Instant::now();
    let index = match SxsiIndex::load_from_file(path) {
        Ok(index) => index,
        Err(e) => return fail(format_args!("cannot load {path}: {e}")),
    };
    let load_time = start.elapsed();
    eprintln!("loaded {path} in {load_time:.2?}");

    let mut options = if materialize || serialize {
        QueryOptions::nodes()
    } else {
        QueryOptions::count()
    };
    options.limit = limit;
    options.offset = offset;
    let specs: Vec<QuerySpec> =
        queries.iter().map(|q| QuerySpec::new(q.as_str(), q.as_str(), options)).collect();
    let batch = match QueryBatch::compile(&index, specs) {
        Ok(batch) => batch,
        Err(e) => return fail_prepare(e),
    };
    let start = Instant::now();
    let results = BatchExecutor::new(threads).run(&index, &batch);
    let query_time = start.elapsed();

    for result in &results {
        let more = if result.result.truncated() { " (more results exist)" } else { "" };
        match result.result.nodes() {
            Some(nodes) if serialize => {
                println!("{}:{more}", result.id);
                for &node in nodes {
                    println!("{}", index.get_subtree(node));
                }
            }
            Some(nodes) => {
                let preorders: Vec<String> =
                    nodes.iter().map(|&n| index.tree().preorder(n).to_string()).collect();
                println!("{}: {} nodes [{}]{more}", result.id, nodes.len(), preorders.join(", "));
            }
            None => println!("{}: {}{more}", result.id, result.result.count()),
        }
    }
    eprintln!("ran {} queries in {query_time:.2?} on {threads} thread(s)", results.len());
    ExitCode::SUCCESS
}

/// `sxsi exists`: existence-only evaluation with early termination.  Exit
/// code 0 when every query matched, 4 when at least one did not.
fn cmd_exists(args: &[String]) -> ExitCode {
    let mut threads = 1usize;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => match parse_number(&mut it, "--threads") {
                Ok(n) if n > 0 => threads = n,
                Ok(_) | Err(_) => return usage_error("--threads expects a positive integer"),
            },
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => positional.push(arg),
        }
    }
    let Some((path, queries)) = positional.split_first() else {
        return usage_error("exists expects <index.sxsi> and at least one XPath expression");
    };
    if queries.is_empty() {
        return usage_error("exists expects at least one XPath expression");
    }

    let index = match SxsiIndex::load_from_file(path) {
        Ok(index) => index,
        Err(e) => return fail(format_args!("cannot load {path}: {e}")),
    };
    let specs: Vec<QuerySpec> =
        queries.iter().map(|q| QuerySpec::exists(q.as_str(), q.as_str())).collect();
    let batch = match QueryBatch::compile(&index, specs) {
        Ok(batch) => batch,
        Err(e) => return fail_prepare(e),
    };
    let results = BatchExecutor::new(threads).run(&index, &batch);
    let mut all_found = true;
    for result in &results {
        let found = result.result.exists();
        all_found &= found;
        println!("{}: {}", result.id, found);
    }
    if all_found {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(4)
    }
}

fn cmd_info(args: &[String]) -> ExitCode {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return usage_error(&format!("unknown option '{flag}'"));
    }
    let [path] = args else {
        return usage_error("info expects exactly one <index.sxsi>");
    };
    let start = Instant::now();
    let index = match SxsiIndex::load_from_file(path) {
        Ok(index) => index,
        Err(e) => return fail(format_args!("cannot load {path}: {e}")),
    };
    let load_time = start.elapsed();

    let stats = index.stats();
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("{path} (format v{}, {file_bytes} bytes on disk, loaded in {load_time:.2?})", sxsi::FORMAT_VERSION);
    println!("  nodes:        {}", stats.num_nodes);
    println!("  elements:     {}", stats.num_elements);
    println!("  texts:        {}", stats.num_texts);
    println!("  tags:         {}", stats.num_tags);
    println!("  tree index:   {} bytes", stats.tree_bytes);
    println!("  text index:   {} bytes", stats.text_index_bytes);
    println!("  plain texts:  {} bytes", stats.plain_text_bytes);
    println!("  total memory: {} bytes", stats.total_bytes());
    let options = index.options();
    println!(
        "  options: sample_rate={} plain_text={} scan_cutoff={}",
        options.text.sample_rate, options.text.keep_plain_text, options.text.scan_cutoff
    );
    ExitCode::SUCCESS
}
