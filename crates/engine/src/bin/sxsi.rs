//! The `sxsi` command-line tool: build, query and inspect `.sxsi` index
//! files.
//!
//! ```text
//! sxsi build <input.xml> <output.sxsi> [--sample-rate N] [--no-plain-text]
//!            [--scan-cutoff N] [--keep-whitespace]
//! sxsi query <index.sxsi> <xpath> [<xpath> ...] [--materialize] [--serialize]
//!            [--threads N]
//! sxsi info  <index.sxsi>
//! ```
//!
//! `build` parses the XML once and writes the versioned binary container;
//! `query` loads the container (no re-parsing, no BWT reconstruction) and
//! runs the given XPath expressions through the parallel
//! [`BatchExecutor`]; `info` prints the stats a capacity planner needs
//! (node/text/tag counts and per-component sizes).
//!
//! Unknown options print usage and exit with a non-zero status; runtime
//! failures (missing files, corrupt indexes, malformed queries) are reported
//! on stderr with exit code 1.

use std::process::ExitCode;
use std::time::Instant;

use sxsi::{SxsiIndex, SxsiOptions};
use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};

const USAGE: &str = "\
usage:
  sxsi build <input.xml> <output.sxsi> [--sample-rate N] [--no-plain-text]
             [--scan-cutoff N] [--keep-whitespace]
  sxsi query <index.sxsi> <xpath> [<xpath> ...] [--materialize] [--serialize]
             [--threads N]
  sxsi info  <index.sxsi>

subcommands:
  build   parse the XML document and write a versioned .sxsi index file
  query   load a .sxsi file and run XPath queries (counts by default)
  info    print size and cardinality statistics of a .sxsi file

build options:
  --sample-rate N    locate sampling step (default 64; smaller = faster
                     locate, larger = smaller index)
  --no-plain-text    drop the plain text copy (smaller index, slower
                     extraction and no scan cut-off)
  --scan-cutoff N    occurrence count above which contains() scans the plain
                     text instead of FM-locating (default 50000)
  --keep-whitespace  keep whitespace-only text nodes

query options:
  --materialize      print the selected node identifiers, not just counts
  --serialize        print the XML serialization of every selected node
  --threads N        worker threads for multi-query batches (default 1)

`sxsi query --help` additionally prints the supported XPath fragment.
";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("sxsi: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("sxsi: {message}");
    ExitCode::FAILURE
}

/// Prints usage plus the XPath fragment summary.  The summary is generated
/// by `sxsi_xpath::fragment_help` from the parser's own axis table, so this
/// help text cannot drift from what the parser accepts.
fn print_help() -> ExitCode {
    println!("{USAGE}\n{}", sxsi_xpath::fragment_help());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return print_help();
    }
    match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("help") => print_help(),
        Some(other) => usage_error(&format!("unknown subcommand '{other}'")),
        None => usage_error("missing subcommand"),
    }
}

fn parse_number(args: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, String> {
    args.next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("{flag} expects a positive integer"))
}

fn cmd_build(args: &[String]) -> ExitCode {
    let mut options = SxsiOptions::default();
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sample-rate" => match parse_number(&mut it, "--sample-rate") {
                Ok(n) if n > 0 => options.text.sample_rate = n,
                Ok(_) | Err(_) => return usage_error("--sample-rate expects a positive integer"),
            },
            "--scan-cutoff" => match parse_number(&mut it, "--scan-cutoff") {
                Ok(n) => options.text.scan_cutoff = n,
                Err(e) => return usage_error(&e),
            },
            "--no-plain-text" => options.text.keep_plain_text = false,
            "--keep-whitespace" => options.keep_whitespace_text = true,
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => paths.push(arg),
        }
    }
    let [input, output] = paths[..] else {
        return usage_error("build expects <input.xml> and <output.sxsi>");
    };

    let xml = match std::fs::read(input) {
        Ok(xml) => xml,
        Err(e) => return fail(format_args!("cannot read {input}: {e}")),
    };
    let start = Instant::now();
    let index = match SxsiIndex::build_from_xml_with_options(&xml, options) {
        Ok(index) => index,
        Err(e) => return fail(e),
    };
    let build_time = start.elapsed();
    let start = Instant::now();
    if let Err(e) = index.save_to_file(output) {
        return fail(format_args!("cannot write {output}: {e}"));
    }
    let write_time = start.elapsed();

    let stats = index.stats();
    let file_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    println!("indexed {input} ({} bytes of XML) in {build_time:.2?}", xml.len());
    println!(
        "  {} nodes, {} elements, {} texts, {} tags",
        stats.num_nodes, stats.num_elements, stats.num_texts, stats.num_tags
    );
    println!(
        "  in-memory {} bytes (tree {} + text index {} + plain text {})",
        stats.total_bytes(),
        stats.tree_bytes,
        stats.text_index_bytes,
        stats.plain_text_bytes
    );
    println!("wrote {output} ({file_bytes} bytes) in {write_time:.2?}");
    ExitCode::SUCCESS
}

fn cmd_query(args: &[String]) -> ExitCode {
    let mut materialize = false;
    let mut serialize = false;
    let mut threads = 1usize;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--materialize" => materialize = true,
            "--serialize" => serialize = true,
            "--threads" => match parse_number(&mut it, "--threads") {
                Ok(n) if n > 0 => threads = n,
                Ok(_) | Err(_) => return usage_error("--threads expects a positive integer"),
            },
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => positional.push(arg),
        }
    }
    let Some((path, queries)) = positional.split_first() else {
        return usage_error("query expects <index.sxsi> and at least one XPath expression");
    };
    if queries.is_empty() {
        return usage_error("query expects at least one XPath expression");
    }

    let start = Instant::now();
    let index = match SxsiIndex::load_from_file(path) {
        Ok(index) => index,
        Err(e) => return fail(format_args!("cannot load {path}: {e}")),
    };
    let load_time = start.elapsed();
    eprintln!("loaded {path} in {load_time:.2?}");

    let specs: Vec<QuerySpec> = queries
        .iter()
        .map(|q| {
            if materialize || serialize {
                QuerySpec::materialize(q.as_str(), q.as_str())
            } else {
                QuerySpec::count(q.as_str(), q.as_str())
            }
        })
        .collect();
    let batch = match QueryBatch::compile(&index, specs) {
        Ok(batch) => batch,
        Err(e) => return fail(e),
    };
    let start = Instant::now();
    let results = BatchExecutor::new(threads).run(&index, &batch);
    let query_time = start.elapsed();

    for result in &results {
        match result.output.nodes() {
            Some(nodes) if serialize => {
                println!("{}:", result.id);
                for &node in nodes {
                    println!("{}", index.get_subtree(node));
                }
            }
            Some(nodes) => {
                let preorders: Vec<String> =
                    nodes.iter().map(|&n| index.tree().preorder(n).to_string()).collect();
                println!("{}: {} nodes [{}]", result.id, nodes.len(), preorders.join(", "));
            }
            None => println!("{}: {}", result.id, result.output.count()),
        }
    }
    eprintln!("ran {} queries in {query_time:.2?} on {threads} thread(s)", results.len());
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return usage_error(&format!("unknown option '{flag}'"));
    }
    let [path] = args else {
        return usage_error("info expects exactly one <index.sxsi>");
    };
    let start = Instant::now();
    let index = match SxsiIndex::load_from_file(path) {
        Ok(index) => index,
        Err(e) => return fail(format_args!("cannot load {path}: {e}")),
    };
    let load_time = start.elapsed();

    let stats = index.stats();
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("{path} (format v{}, {file_bytes} bytes on disk, loaded in {load_time:.2?})", sxsi::FORMAT_VERSION);
    println!("  nodes:        {}", stats.num_nodes);
    println!("  elements:     {}", stats.num_elements);
    println!("  texts:        {}", stats.num_texts);
    println!("  tags:         {}", stats.num_tags);
    println!("  tree index:   {} bytes", stats.tree_bytes);
    println!("  text index:   {} bytes", stats.text_index_bytes);
    println!("  plain texts:  {} bytes", stats.plain_text_bytes);
    println!("  total memory: {} bytes", stats.total_bytes());
    let options = index.options();
    println!(
        "  options: sample_rate={} plain_text={} scan_cutoff={}",
        options.text.sample_rate, options.text.keep_plain_text, options.text.scan_cutoff
    );
    ExitCode::SUCCESS
}
