//! The `sxsi` command-line tool: build, query and inspect `.sxsi` index
//! files.
//!
//! ```text
//! sxsi build   <input.xml> <output.sxsi> [--sample-rate N] [--no-plain-text]
//!              [--scan-cutoff N] [--keep-whitespace]
//! sxsi build-collection <output.sxsic> <doc.xml|doc.sxsi> ... [build options]
//! sxsi query   <index.sxsi|collection.sxsic> [<xpath> ...] [--collection]
//!              [--queries-file FILE] [--materialize] [--serialize]
//!              [--limit N] [--offset N] [--threads N]
//! sxsi exists  <index.sxsi|collection.sxsic> <xpath> [<xpath> ...]
//!              [--collection] [--threads N]
//! sxsi search  <index.sxsi|collection.sxsic> <term> [<term> ...]
//!              [--mode all|any|phrase] [--limit N] [--threads N]
//! sxsi info    <index.sxsi|collection.sxsic>
//! sxsi verify  <index.sxsi|collection.sxsic> [--deep]
//! sxsi serve   <[id=]index.sxsi|.sxsic> ... (--socket PATH | --tcp ADDR) [options]
//! sxsi client  (--socket PATH | --tcp ADDR) <op> [op options]
//! sxsi queries [--set paper|ordered] [--print0]
//! ```
//!
//! `build` parses the XML once and writes the versioned binary container;
//! `query` loads the container (no re-parsing, no BWT reconstruction) and
//! runs the given XPath expressions through the parallel
//! [`BatchExecutor`] (counts by default; `--limit`/`--offset` select a
//! document-order result window with early termination); `exists` answers
//! existence only, stopping at the first match; `info` prints the stats a
//! capacity planner needs (node/text/tag counts and per-component sizes).
//!
//! `search` runs ranked keyword (`ft:`) search straight off the FM-index:
//! hits print best-first as `{doc}:{preorder} score=…` lines, and on a
//! collection the per-document shards fan out across the batch pool and
//! merge into one globally ranked list (see `docs/search.md`).
//!
//! `serve` keeps the loaded indexes warm in a daemon answering queries
//! over a framed socket protocol (`docs/protocol.md`) with plan and
//! result LRU caches plus live metrics; `client` talks to such a
//! daemon, printing query bodies byte-identical to `query`/`exists`;
//! `queries` lists the paper's query sets for scripting (`--print0`
//! because query M11 contains literal newlines).
//!
//! Exit codes (documented in `docs/guide.md`):
//!
//! * `0` — success (`exists`: every query matched at least one node)
//! * `1` — runtime failure (missing files, corrupt indexes, parse errors)
//! * `2` — usage error (unknown flags, missing operands)
//! * `3` — a query parsed but compiles to a shape this engine does not
//!   support; stderr carries a structured
//!   `sxsi: error=unsupported-query query='…' detail='…'` line
//! * `4` — `exists` ran fine but at least one query matched nothing
//! * `5` — `verify` loaded the index but found invariant violations; each
//!   is printed as an `error code=… path=… detail=…` line

use std::io::{self, Write as _};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sxsi::{FtMode, FtQuery, QueryError, QueryOptions, SxsiIndex, SxsiOptions, Verify, VerifyDepth};
use sxsi_collection::{is_collection_path, verify_collection_file, Collection};
use sxsi_engine::collection::{
    render_collection_result, CollectionExecutor, CollectionQueryError,
};
use sxsi_engine::search::{
    query_display, render_search_outcome, search_collection, search_index,
};
use sxsi_engine::server::client::{exit_code_for, Client};
use sxsi_engine::server::protocol::Response;
use sxsi_engine::server::{
    render_batch_result, Listener, OutputKind, ServeOptions, ServedIndex, Server,
};
use sxsi_engine::{BatchError, BatchExecutor, QueryBatch, QuerySpec};

const USAGE: &str = "\
usage:
  sxsi build   <input.xml> <output.sxsi> [--sample-rate N] [--no-plain-text]
               [--scan-cutoff N] [--keep-whitespace]
  sxsi build-collection <output.sxsic> <doc.xml|doc.sxsi> [<doc> ...]
               [build options]
  sxsi query   <index.sxsi|collection.sxsic> [<xpath> ...] [--collection]
               [--queries-file FILE] [--materialize] [--serialize]
               [--limit N] [--offset N] [--threads N]
  sxsi exists  <index.sxsi|collection.sxsic> <xpath> [<xpath> ...]
               [--collection] [--threads N]
  sxsi search  <index.sxsi|collection.sxsic> <term> [<term> ...]
               [--mode all|any|phrase] [--limit N] [--threads N]
               [--collection]
  sxsi info    <index.sxsi|collection.sxsic>
  sxsi verify  <index.sxsi|collection.sxsic> [--deep]
  sxsi serve   <[id=]index.sxsi|.sxsic> [<[id=]index> ...]
               (--socket PATH | --tcp ADDR) [--threads N]
               [--plan-cache N] [--result-cache N] [--read-timeout SECS]
  sxsi client  (--socket PATH | --tcp ADDR) <op> [op options]
               ops: query [--index ID] [--materialize|--serialize]
                          [--limit N] [--offset N] <xpath> [<xpath> ...]
                    exists [--index ID] <xpath> [<xpath> ...]
                    search [--index ID] [--mode all|any|phrase] [--limit N]
                           <term> [<term> ...]
                    stats | info | ping | shutdown
  sxsi queries [--set paper|ordered] [--print0]

subcommands:
  build    parse the XML document and write a versioned .sxsi index file
  build-collection
           index several documents into per-document .sxsi segments plus
           a checksummed .sxsic manifest; inputs may be XML files (built
           with the build options) or prebuilt .sxsi indexes
  query    load a .sxsi file (or a .sxsic collection: queries fan out
           across its documents and come back merged in document order,
           DocId-qualified) and run XPath queries (counts by default)
  exists   report true/false per query, stopping at the first match
  search   ranked keyword search (the ft: predicates, standalone): terms
           are tokenized and matched whole against element subtrees via
           the FM-index; hits print best-first as {doc}:{preorder} with a
           tf-idf style score (collections merge per-document shards)
  info     print size and cardinality statistics of a .sxsi file, or the
           manifest summary of a .sxsic collection
  verify   audit a .sxsi file: per-section checksums, then the structural
           invariants of every loaded component (--deep adds full
           sequence/walk replays; see docs/verification.md); on a .sxsic
           collection, audit the manifest and every segment instead
  serve    answer queries from warm indexes over a framed socket protocol,
           with plan/result LRU caches and live metrics (see docs/protocol.md);
           a .sxsic collection is served as one warm logical index
  client   send ops to a running daemon; query/exists bodies are
           byte-identical to the in-process query/exists subcommands
  queries  list the paper's query sets as id<TAB>xpath records for
           scripting (--print0 emits NUL terminators: M11 contains newlines)

build options:
  --sample-rate N    locate sampling step (default 64; smaller = faster
                     locate, larger = smaller index)
  --no-plain-text    drop the plain text copy (smaller index, slower
                     extraction and no scan cut-off)
  --scan-cutoff N    occurrence count above which contains() scans the plain
                     text instead of FM-locating (default 50000)
  --keep-whitespace  keep whitespace-only text nodes

query options:
  --materialize      print the selected node identifiers, not just counts
  --serialize        print the XML serialization of every selected node
  --limit N          produce at most N result nodes (document order; the
                     evaluators stop early once the window is complete)
  --offset N         skip the first N result nodes (pagination)
  --threads N        worker threads for multi-query batches (default 1);
                     for collections, per-document shard workers
  --collection       treat the path as a .sxsic collection manifest
                     (implied when the path ends in .sxsic)
  --queries-file F   append queries from F: one per line, either
                     'id<TAB>xpath' or a bare xpath; blank lines and
                     lines starting with # are skipped

search options:
  --mode M           all (default: every term somewhere in the subtree),
                     any (at least one term), or phrase (terms consecutive
                     inside one text node)
  --limit N          print at most the N best-scoring hits
  --threads N        per-document shard workers on collections (default 1)
  --collection       treat the path as a .sxsic collection manifest
                     (implied when the path ends in .sxsic)

serve options:
  --socket PATH      listen on a Unix-domain socket (removed on shutdown)
  --tcp ADDR         listen on a TCP address (port 0 picks one; the bound
                     address is printed as 'listening on ...')
  --threads N        executor worker threads (default: available cores)
  --plan-cache N     compiled-plan LRU entries (default 128, 0 disables)
  --result-cache N   result LRU entries (default 128, 0 disables)
  --read-timeout S   per-connection idle timeout in seconds (default 30)

exit codes: 0 success, 1 runtime failure, 2 usage error,
            3 unsupported query shape, 4 exists found no match,
            5 verify found invariant violations

`sxsi query --help` additionally prints the supported XPath fragment.
";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("sxsi: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("sxsi: {message}");
    ExitCode::FAILURE
}

/// Reports a query that failed to prepare.  Parse errors are ordinary
/// runtime failures (exit 1); queries that parse but compile to a shape the
/// engine does not support exit with the distinct code 3 and a structured
/// stderr line, so callers can tell "fix the query" apart from "engine
/// limitation".
fn fail_prepare(err: BatchError) -> ExitCode {
    match &err.error {
        QueryError::Compile(e) => {
            eprintln!(
                "sxsi: error=unsupported-query query='{}' detail='{}'",
                err.id, e
            );
            ExitCode::from(3)
        }
        _ => fail(err),
    }
}

/// Prints usage plus the XPath fragment summary.  The summary is generated
/// by `sxsi_xpath::fragment_help` from the parser's own axis table, so this
/// help text cannot drift from what the parser accepts.
fn print_help() -> ExitCode {
    println!("{USAGE}\n{}", sxsi_xpath::fragment_help());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return print_help();
    }
    match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("build-collection") => cmd_build_collection(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("exists") => cmd_exists(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("queries") => cmd_queries(&args[1..]),
        Some("help") => print_help(),
        Some(other) => usage_error(&format!("unknown subcommand '{other}'")),
        None => usage_error("missing subcommand"),
    }
}

fn parse_number(args: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, String> {
    args.next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("{flag} expects a positive integer"))
}

fn cmd_build(args: &[String]) -> ExitCode {
    let mut options = SxsiOptions::default();
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sample-rate" => match parse_number(&mut it, "--sample-rate") {
                Ok(n) if n > 0 => options.text.sample_rate = n,
                Ok(_) | Err(_) => return usage_error("--sample-rate expects a positive integer"),
            },
            "--scan-cutoff" => match parse_number(&mut it, "--scan-cutoff") {
                Ok(n) => options.text.scan_cutoff = n,
                Err(e) => return usage_error(&e),
            },
            "--no-plain-text" => options.text.keep_plain_text = false,
            "--keep-whitespace" => options.keep_whitespace_text = true,
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => paths.push(arg),
        }
    }
    let [input, output] = paths[..] else {
        return usage_error("build expects <input.xml> and <output.sxsi>");
    };

    let xml = match std::fs::read(input) {
        Ok(xml) => xml,
        Err(e) => return fail(format_args!("cannot read {input}: {e}")),
    };
    let start = Instant::now();
    let index = match SxsiIndex::build_from_xml_with_options(&xml, options) {
        Ok(index) => index,
        Err(e) => return fail(e),
    };
    let build_time = start.elapsed();
    let start = Instant::now();
    if let Err(e) = index.save_to_file(output) {
        return fail(format_args!("cannot write {output}: {e}"));
    }
    let write_time = start.elapsed();

    let stats = index.stats();
    let file_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    println!("indexed {input} ({} bytes of XML) in {build_time:.2?}", xml.len());
    println!(
        "  {} nodes, {} elements, {} texts, {} tags",
        stats.num_nodes, stats.num_elements, stats.num_texts, stats.num_tags
    );
    println!(
        "  in-memory {} bytes (tree {} + text index {} + plain text {})",
        stats.total_bytes(),
        stats.tree_bytes,
        stats.text_index_bytes,
        stats.plain_text_bytes
    );
    println!("wrote {output} ({file_bytes} bytes) in {write_time:.2?}");
    ExitCode::SUCCESS
}

/// `sxsi build-collection`: index several documents into per-document
/// `.sxsi` segments plus a checksummed `.sxsic` manifest.  XML inputs
/// are built with the usual build options; `.sxsi` inputs are loaded
/// as-is.  Document names are the input file stems, in argument order
/// (which fixes DocId order and therefore global document order).
fn cmd_build_collection(args: &[String]) -> ExitCode {
    let mut options = SxsiOptions::default();
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sample-rate" => match parse_number(&mut it, "--sample-rate") {
                Ok(n) if n > 0 => options.text.sample_rate = n,
                Ok(_) | Err(_) => return usage_error("--sample-rate expects a positive integer"),
            },
            "--scan-cutoff" => match parse_number(&mut it, "--scan-cutoff") {
                Ok(n) => options.text.scan_cutoff = n,
                Err(e) => return usage_error(&e),
            },
            "--no-plain-text" => options.text.keep_plain_text = false,
            "--keep-whitespace" => options.keep_whitespace_text = true,
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => paths.push(arg),
        }
    }
    let Some((output, inputs)) = paths.split_first() else {
        return usage_error("build-collection expects <output.sxsic> and at least one document");
    };
    if inputs.is_empty() {
        return usage_error("build-collection expects at least one <doc.xml|doc.sxsi>");
    }

    let start = Instant::now();
    let mut docs: Vec<(String, SxsiIndex)> = Vec::new();
    for input in inputs {
        let name = std::path::Path::new(input.as_str())
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let index = if input.ends_with(".sxsi") {
            match SxsiIndex::load_from_file(input) {
                Ok(index) => index,
                Err(e) => return fail(format_args!("cannot load {input}: {e}")),
            }
        } else {
            let xml = match std::fs::read(input) {
                Ok(xml) => xml,
                Err(e) => return fail(format_args!("cannot read {input}: {e}")),
            };
            match SxsiIndex::build_from_xml_with_options(&xml, options.clone()) {
                Ok(index) => index,
                Err(e) => return fail(format_args!("cannot index {input}: {e}")),
            }
        };
        docs.push((name, index));
    }
    let num_docs = docs.len();
    let collection = match Collection::build(output, docs) {
        Ok(collection) => collection,
        Err(e) => return fail(format_args!("cannot write {output}: {e}")),
    };
    let manifest = collection.manifest();
    let manifest_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    println!(
        "collected {num_docs} documents into {output} in {:.2?}",
        start.elapsed()
    );
    println!(
        "  {} elements, {} texts across the collection",
        manifest.total_elements, manifest.total_texts
    );
    for entry in &manifest.docs {
        println!(
            "  doc {}: {} (segment {}, {} nodes)",
            entry.id, entry.name, entry.segment, entry.num_nodes
        );
    }
    println!(
        "  manifest {manifest_bytes} bytes, fingerprint {:016x}",
        collection.fingerprint()
    );
    ExitCode::SUCCESS
}

/// Reports a collection query that failed to prepare, mirroring
/// [`fail_prepare`]'s exit-code taxonomy (compile errors exit 3 with the
/// structured `unsupported-query` line).
fn fail_collection_prepare(id: &str, err: CollectionQueryError) -> ExitCode {
    match err.query_error() {
        Some(QueryError::Compile(e)) => {
            eprintln!("sxsi: error=unsupported-query query='{id}' detail='{e}'");
            ExitCode::from(3)
        }
        _ => fail(err),
    }
}

/// Runs a query batch against a `.sxsic` collection and prints each
/// result exactly as the daemon renders it (`doc-name:preorder` node
/// qualification).  Shared by `query --collection` and
/// `exists --collection`; for `exists`, exit 4 when any query matched
/// nothing, mirroring the single-index subcommand.
fn run_collection_queries(
    path: &str,
    specs: &[(String, String)],
    options: QueryOptions,
    output: OutputKind,
    threads: usize,
) -> ExitCode {
    let start = Instant::now();
    let collection = match Collection::open(path) {
        Ok(collection) => collection,
        Err(e) => return fail(format_args!("cannot load {path}: {e}")),
    };
    eprintln!(
        "loaded {path} ({} docs, manifest only) in {:.2?}",
        collection.num_docs(),
        start.elapsed()
    );

    let executor = CollectionExecutor::new(threads);
    let start = Instant::now();
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    let mut rendered = String::new();
    let mut all_found = true;
    let mut pipe_closed = false;
    for (id, xpath) in specs {
        let result = match executor.run(&collection, xpath, &options) {
            Ok(result) => result,
            Err(e) => return fail_collection_prepare(id, e),
        };
        all_found &= result.exists();
        if pipe_closed {
            continue;
        }
        rendered.clear();
        render_collection_result(&collection, id, &result, output, &mut rendered);
        match check_stdout_write(out.write_all(rendered.as_bytes())) {
            WriteOutcome::Written => {}
            WriteOutcome::PipeClosed => pipe_closed = true,
            WriteOutcome::Failed(code) => return code,
        }
    }
    if !pipe_closed {
        if let WriteOutcome::Failed(code) = check_stdout_write(out.flush()) {
            return code;
        }
    }
    eprintln!(
        "ran {} queries across {} docs in {:.2?} on {threads} thread(s)",
        specs.len(),
        collection.num_docs(),
        start.elapsed()
    );
    if output == OutputKind::Exists && !all_found {
        ExitCode::from(4)
    } else {
        ExitCode::SUCCESS
    }
}

/// Reads a batch file for `--queries-file`: one query per line, either
/// `id<TAB>xpath` or a bare xpath (its own id), skipping blank lines and
/// `#` comments.
fn read_queries_file(file: &str) -> Result<Vec<(String, String)>, ExitCode> {
    let text = std::fs::read_to_string(file).map_err(|e| {
        eprintln!("sxsi: error code=batch-file-open file='{file}' detail='{e}'");
        ExitCode::FAILURE
    })?;
    Ok(text
        .lines()
        // trim (not trim_end): an indented `# comment` or a line of only
        // spaces must be skipped, not submitted as a query.
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| match line.split_once('\t') {
            Some((id, xpath)) => (id.to_string(), xpath.to_string()),
            None => (line.to_string(), line.to_string()),
        })
        .collect())
}

fn cmd_query(args: &[String]) -> ExitCode {
    let mut materialize = false;
    let mut serialize = false;
    let mut collection = false;
    let mut queries_file: Option<&String> = None;
    let mut threads = 1usize;
    let mut limit: Option<u64> = None;
    let mut offset = 0u64;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--materialize" => materialize = true,
            "--serialize" => serialize = true,
            "--collection" => collection = true,
            "--queries-file" => match it.next() {
                Some(file) => queries_file = Some(file),
                None => return usage_error("--queries-file expects a path"),
            },
            "--threads" => match parse_number(&mut it, "--threads") {
                Ok(n) if n > 0 => threads = n,
                Ok(_) | Err(_) => return usage_error("--threads expects a positive integer"),
            },
            "--limit" => match parse_number(&mut it, "--limit") {
                Ok(n) => limit = Some(n as u64),
                Err(e) => return usage_error(&e),
            },
            "--offset" => match parse_number(&mut it, "--offset") {
                Ok(n) => offset = n as u64,
                Err(e) => return usage_error(&e),
            },
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => positional.push(arg),
        }
    }
    let Some((path, queries)) = positional.split_first() else {
        return usage_error("query expects <index.sxsi> and at least one XPath expression");
    };
    let mut batch_specs: Vec<(String, String)> =
        queries.iter().map(|q| (q.to_string(), q.to_string())).collect();
    if let Some(file) = queries_file {
        let loaded = match read_queries_file(file) {
            Ok(loaded) => loaded,
            Err(code) => return code,
        };
        if loaded.is_empty() {
            // Structurally distinct from `info`'s open failure: the file
            // exists and is readable, it just contains no queries.
            eprintln!(
                "sxsi: error code=empty-batch file='{file}' \
                 detail='no queries after blank lines and # comments'"
            );
            return ExitCode::FAILURE;
        }
        batch_specs.extend(loaded);
    }
    if batch_specs.is_empty() {
        return usage_error("query expects at least one XPath expression");
    }

    let mut options = if materialize || serialize {
        QueryOptions::nodes()
    } else {
        QueryOptions::count()
    };
    options.limit = limit;
    options.offset = offset;
    let output = if serialize {
        OutputKind::Serialize
    } else if materialize {
        OutputKind::Nodes
    } else {
        OutputKind::Count
    };
    if collection || is_collection_path(path.as_str()) {
        return run_collection_queries(path, &batch_specs, options, output, threads);
    }

    let start = Instant::now();
    let index = match SxsiIndex::load_from_file(path) {
        Ok(index) => index,
        Err(e) => return fail(format_args!("cannot load {path}: {e}")),
    };
    let load_time = start.elapsed();
    eprintln!("loaded {path} in {load_time:.2?}");

    let specs: Vec<QuerySpec> = batch_specs
        .iter()
        .map(|(id, xpath)| QuerySpec::new(id.as_str(), xpath.as_str(), options))
        .collect();
    let batch = match QueryBatch::compile(&index, specs) {
        Ok(batch) => batch,
        Err(e) => return fail_prepare(e),
    };
    let start = Instant::now();
    let results = BatchExecutor::new(threads).run(&index, &batch);
    let query_time = start.elapsed();

    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    let mut rendered = String::new();
    for result in &results {
        rendered.clear();
        render_batch_result(&index, result, output, &mut rendered);
        match check_stdout_write(out.write_all(rendered.as_bytes())) {
            WriteOutcome::Written => {}
            WriteOutcome::PipeClosed => return ExitCode::SUCCESS,
            WriteOutcome::Failed(code) => return code,
        }
    }
    match check_stdout_write(out.flush()) {
        WriteOutcome::Written => {}
        WriteOutcome::PipeClosed => return ExitCode::SUCCESS,
        WriteOutcome::Failed(code) => return code,
    }
    eprintln!("ran {} queries in {query_time:.2?} on {threads} thread(s)", results.len());
    ExitCode::SUCCESS
}

/// How a stdout write went.  A closed downstream pipe
/// (`sxsi query … | head`) is normal usage, not a failure: printing
/// stops but the process exits cleanly.
enum WriteOutcome {
    Written,
    PipeClosed,
    Failed(ExitCode),
}

fn check_stdout_write(result: io::Result<()>) -> WriteOutcome {
    match result {
        Ok(()) => WriteOutcome::Written,
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => WriteOutcome::PipeClosed,
        Err(e) => WriteOutcome::Failed(fail(format_args!("cannot write to stdout: {e}"))),
    }
}

/// `sxsi exists`: existence-only evaluation with early termination.  Exit
/// code 0 when every query matched, 4 when at least one did not.
fn cmd_exists(args: &[String]) -> ExitCode {
    let mut threads = 1usize;
    let mut collection = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--collection" => collection = true,
            "--threads" => match parse_number(&mut it, "--threads") {
                Ok(n) if n > 0 => threads = n,
                Ok(_) | Err(_) => return usage_error("--threads expects a positive integer"),
            },
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => positional.push(arg),
        }
    }
    let Some((path, queries)) = positional.split_first() else {
        return usage_error("exists expects <index.sxsi> and at least one XPath expression");
    };
    if queries.is_empty() {
        return usage_error("exists expects at least one XPath expression");
    }
    if collection || is_collection_path(path.as_str()) {
        let specs: Vec<(String, String)> =
            queries.iter().map(|q| (q.to_string(), q.to_string())).collect();
        return run_collection_queries(
            path,
            &specs,
            QueryOptions::exists(),
            OutputKind::Exists,
            threads,
        );
    }

    let index = match SxsiIndex::load_from_file(path) {
        Ok(index) => index,
        Err(e) => return fail(format_args!("cannot load {path}: {e}")),
    };
    let specs: Vec<QuerySpec> =
        queries.iter().map(|q| QuerySpec::exists(q.as_str(), q.as_str())).collect();
    let batch = match QueryBatch::compile(&index, specs) {
        Ok(batch) => batch,
        Err(e) => return fail_prepare(e),
    };
    let results = BatchExecutor::new(threads).run(&index, &batch);
    let mut all_found = true;
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    let mut rendered = String::new();
    let mut pipe_closed = false;
    for result in &results {
        all_found &= result.result.exists();
        if pipe_closed {
            continue;
        }
        rendered.clear();
        render_batch_result(&index, result, OutputKind::Exists, &mut rendered);
        match check_stdout_write(out.write_all(rendered.as_bytes())) {
            WriteOutcome::Written => {}
            // The exit code carries the answer even when the reader
            // hung up, so keep evaluating `all_found`.
            WriteOutcome::PipeClosed => pipe_closed = true,
            WriteOutcome::Failed(code) => return code,
        }
    }
    if !pipe_closed {
        if let WriteOutcome::Failed(code) = check_stdout_write(out.flush()) {
            return code;
        }
    }
    if all_found {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(4)
    }
}

/// `sxsi search`: ranked keyword search over a `.sxsi` index or `.sxsic`
/// collection.  Hits print best-first as `{doc}:{preorder} score=…` on
/// one line, byte-identical to the daemon's `search` bodies for the same
/// index (single-index hit labels are the file stem, which is also the
/// id `sxsi serve` derives for a bare path).
fn cmd_search(args: &[String]) -> ExitCode {
    let mut mode = FtMode::All;
    let mut limit: Option<usize> = None;
    let mut threads = 1usize;
    let mut collection = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--collection" => collection = true,
            "--mode" => match it.next().and_then(|v| FtMode::parse(v)) {
                Some(m) => mode = m,
                None => return usage_error("--mode expects all, any or phrase"),
            },
            "--limit" => match parse_number(&mut it, "--limit") {
                Ok(n) => limit = Some(n),
                Err(e) => return usage_error(&e),
            },
            "--threads" => match parse_number(&mut it, "--threads") {
                Ok(n) if n > 0 => threads = n,
                Ok(_) | Err(_) => return usage_error("--threads expects a positive integer"),
            },
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => positional.push(arg),
        }
    }
    let Some((path, terms)) = positional.split_first() else {
        return usage_error("search expects <index.sxsi> and at least one term");
    };
    if terms.is_empty() {
        return usage_error("search expects at least one term");
    }
    let query = FtQuery::new(mode, terms);
    if query.tokens.is_empty() {
        return fail("search terms hold no indexable tokens");
    }
    let id = query_display(&query);

    let start = Instant::now();
    let outcome = if collection || is_collection_path(path.as_str()) {
        let col = match Collection::open(path) {
            Ok(col) => col,
            Err(e) => return fail(format_args!("cannot load {path}: {e}")),
        };
        eprintln!("loaded {path} ({} docs) in {:.2?}", col.num_docs(), start.elapsed());
        let start = Instant::now();
        let outcome =
            match search_collection(&BatchExecutor::new(threads), &col, &query, limit) {
                Ok(outcome) => outcome,
                Err(e) => return fail(e),
            };
        eprintln!(
            "searched {} docs in {:.2?} on {threads} thread(s)",
            col.num_docs(),
            start.elapsed()
        );
        outcome
    } else {
        let index = match SxsiIndex::load_from_file(path) {
            Ok(index) => index,
            Err(e) => return fail(format_args!("cannot load {path}: {e}")),
        };
        eprintln!("loaded {path} in {:.2?}", start.elapsed());
        let doc = std::path::Path::new(path.as_str())
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let start = Instant::now();
        let outcome = search_index(&index, &doc, &query, limit);
        eprintln!("searched in {:.2?}", start.elapsed());
        outcome
    };

    let mut rendered = String::new();
    render_search_outcome(&id, &outcome, &mut rendered);
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    match check_stdout_write(out.write_all(rendered.as_bytes()).and_then(|()| out.flush())) {
        WriteOutcome::Failed(code) => code,
        _ => ExitCode::SUCCESS,
    }
}

fn cmd_info(args: &[String]) -> ExitCode {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return usage_error(&format!("unknown option '{flag}'"));
    }
    let [path] = args else {
        return usage_error("info expects exactly one <index.sxsi>");
    };
    if is_collection_path(path.as_str()) {
        return cmd_info_collection(path);
    }
    let start = Instant::now();
    let index = match SxsiIndex::load_from_file(path) {
        Ok(index) => index,
        Err(e) => {
            // Structured (unlike the generic `cannot load` of query paths)
            // so scripts can tell "info target missing/corrupt" apart from
            // other failures without parsing prose.
            eprintln!("sxsi: error code=info-open path='{path}' detail='{e}'");
            return ExitCode::FAILURE;
        }
    };
    let load_time = start.elapsed();

    let stats = index.stats();
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("{path} (format v{}, {file_bytes} bytes on disk, loaded in {load_time:.2?})", sxsi::FORMAT_VERSION);
    println!("  nodes:        {}", stats.num_nodes);
    println!("  elements:     {}", stats.num_elements);
    println!("  texts:        {}", stats.num_texts);
    println!("  tags:         {}", stats.num_tags);
    println!("  tree index:   {} bytes", stats.tree_bytes);
    println!("  text index:   {} bytes", stats.text_index_bytes);
    println!("  plain texts:  {} bytes", stats.plain_text_bytes);
    println!("  total memory: {} bytes", stats.total_bytes());
    let options = index.options();
    println!(
        "  options: sample_rate={} plain_text={} scan_cutoff={}",
        options.text.sample_rate, options.text.keep_plain_text, options.text.scan_cutoff
    );
    let backends = options.succinct;
    println!(
        "  backends: rank={} (tag {}) sequence={} (tag {})",
        backends.rank.name(),
        backends.rank.tag(),
        backends.sequence.name(),
        backends.sequence.tag()
    );
    // Per-section framing status straight from the file, independent of the
    // load above (a section the loader rebuilt fine can still be reported).
    match sxsi::scan_container_file(path) {
        Ok(scan) => {
            println!("  sections:");
            for section in &scan.sections {
                println!(
                    "    {:<8} {:>10} bytes  checksum {}",
                    section.name,
                    section.length,
                    if section.checksum_ok { "ok" } else { "BAD" }
                );
            }
            if !scan.clean_end {
                println!("    (container does not end cleanly after the last section)");
            }
        }
        Err(e) => println!("  sections: unreadable ({e})"),
    }
    let report = index.verify(VerifyDepth::Quick);
    println!("  verify (quick): {report}");
    ExitCode::SUCCESS
}

/// `sxsi info` on a `.sxsic` collection: the manifest summary plus a
/// quick verification (manifest invariants, segment presence and
/// checksums — no segment loads).
fn cmd_info_collection(path: &str) -> ExitCode {
    let start = Instant::now();
    let collection = match Collection::open(path) {
        Ok(collection) => collection,
        Err(e) => {
            eprintln!("sxsi: error code=info-open path='{path}' detail='{e}'");
            return ExitCode::FAILURE;
        }
    };
    let load_time = start.elapsed();
    let manifest = collection.manifest();
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "{path} (collection format v{}, {file_bytes} bytes on disk, loaded in {load_time:.2?})",
        sxsi_collection::manifest::COLLECTION_FORMAT_VERSION
    );
    println!("  documents:      {}", manifest.num_docs());
    println!("  total elements: {}", manifest.total_elements);
    println!("  total texts:    {}", manifest.total_texts);
    println!("  fingerprint:    {:016x}", collection.fingerprint());
    for entry in &manifest.docs {
        println!(
            "  doc {}: {} segment={} nodes={} elements={} texts={} \
             rank_tag={} sequence_tag={} checksum={:016x}",
            entry.id,
            entry.name,
            entry.segment,
            entry.num_nodes,
            entry.num_elements,
            entry.num_texts,
            entry.rank_tag,
            entry.sequence_tag,
            entry.checksum
        );
    }
    let report = collection.verify(VerifyDepth::Quick);
    println!("  verify (quick): {report}");
    ExitCode::SUCCESS
}

/// `sxsi verify`: audit the container framing and every structural
/// invariant of the loaded index.  Exit 0 when clean, 1 when the file
/// cannot be loaded at all, 5 when the index loads but verification finds
/// violations (each printed as a structured `error code=…` line).
fn cmd_verify(args: &[String]) -> ExitCode {
    let mut deep = false;
    let mut positional: Vec<&String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--deep" => deep = true,
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => positional.push(arg),
        }
    }
    let [path] = positional[..] else {
        return usage_error("verify expects exactly one <index.sxsi>");
    };
    let depth = if deep { VerifyDepth::Deep } else { VerifyDepth::Quick };

    if is_collection_path(path.as_str()) {
        // Collections: manifest invariants, segment presence and
        // checksums; --deep re-decodes every segment, cross-checks its
        // counts against the manifest, and verifies the loaded index.
        let start = Instant::now();
        let report = verify_collection_file(path.as_str(), depth);
        println!(
            "{path}: collection verify ({}) in {:.2?}: {report}",
            if deep { "deep" } else { "quick" },
            start.elapsed()
        );
        return if report.is_ok() { ExitCode::SUCCESS } else { ExitCode::from(5) };
    }

    // Stage 1: container framing.  The scan does not stop at a bad
    // checksum, so every damaged section is reported, not just the first.
    let mut framing_ok = true;
    match sxsi::scan_container_file(path) {
        Ok(scan) => {
            println!("{path}: container format v{}", scan.version);
            for section in &scan.sections {
                println!(
                    "  section {:<8} {:>10} bytes  checksum {}",
                    section.name,
                    section.length,
                    if section.checksum_ok { "ok" } else { "BAD" }
                );
                framing_ok &= section.checksum_ok;
            }
            if !scan.clean_end {
                println!("  container does not end cleanly after the last section");
                framing_ok = false;
            }
        }
        Err(e) => return fail(format_args!("cannot scan {path}: {e}")),
    }

    // Stage 2: structural invariants of the loaded index.
    let start = Instant::now();
    let index = match SxsiIndex::load_from_file(path) {
        Ok(index) => index,
        Err(e) => return fail(format_args!("cannot load {path}: {e}")),
    };
    println!("loaded in {:.2?}", start.elapsed());
    let start = Instant::now();
    let report = index.verify(depth);
    println!(
        "verify ({}) in {:.2?}: {report}",
        if deep { "deep" } else { "quick" },
        start.elapsed()
    );
    if report.is_ok() && framing_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(5)
    }
}

/// `sxsi serve`: load the indexes once, then answer queries over a
/// framed socket until a `shutdown` command arrives.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut socket: Option<&String> = None;
    let mut tcp: Option<&String> = None;
    let mut options = ServeOptions::default();
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => match it.next() {
                Some(path) => socket = Some(path),
                None => return usage_error("--socket expects a path"),
            },
            "--tcp" => match it.next() {
                Some(addr) => tcp = Some(addr),
                None => return usage_error("--tcp expects an address like 127.0.0.1:7878"),
            },
            "--threads" => match parse_number(&mut it, "--threads") {
                Ok(n) => options.threads = n,
                Err(e) => return usage_error(&e),
            },
            "--plan-cache" => match parse_number(&mut it, "--plan-cache") {
                Ok(n) => options.plan_cache_capacity = n,
                Err(e) => return usage_error(&e),
            },
            "--result-cache" => match parse_number(&mut it, "--result-cache") {
                Ok(n) => options.result_cache_capacity = n,
                Err(e) => return usage_error(&e),
            },
            "--read-timeout" => match parse_number(&mut it, "--read-timeout") {
                Ok(n) if n > 0 => options.read_timeout = Duration::from_secs(n as u64),
                Ok(_) | Err(_) => return usage_error("--read-timeout expects seconds > 0"),
            },
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => positional.push(arg),
        }
    }
    if positional.is_empty() {
        return usage_error("serve expects at least one <[id=]index.sxsi>");
    }
    let (socket, tcp) = match (socket, tcp) {
        (Some(s), None) => (Some(s), None),
        (None, Some(t)) => (None, Some(t)),
        _ => return usage_error("serve expects exactly one of --socket or --tcp"),
    };

    let mut indexes: Vec<(String, ServedIndex)> = Vec::new();
    for spec in positional {
        // `id=path` names the index explicitly; a bare path uses its
        // file stem as the id.
        let (id, path) = match spec.split_once('=') {
            Some((id, path)) => (id.to_string(), path),
            None => {
                let stem = std::path::Path::new(spec.as_str())
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                (stem, spec.as_str())
            }
        };
        let start = Instant::now();
        if is_collection_path(path) {
            // A collection served as one warm logical index: every
            // segment is loaded (and checksum-validated) up front so
            // queries never pay a lazy load.
            let collection = match Collection::open(path) {
                Ok(collection) => collection,
                Err(e) => return fail(format_args!("cannot load {path}: {e}")),
            };
            if let Err(e) = collection.load_all() {
                return fail(format_args!("cannot load {path}: {e}"));
            }
            eprintln!(
                "loaded {path} as '{id}' ({} docs) in {:.2?}",
                collection.num_docs(),
                start.elapsed()
            );
            indexes.push((id, ServedIndex::Collection(Arc::new(collection))));
        } else {
            let index = match SxsiIndex::load_from_file(path) {
                Ok(index) => index,
                Err(e) => return fail(format_args!("cannot load {path}: {e}")),
            };
            eprintln!("loaded {path} as '{id}' in {:.2?}", start.elapsed());
            indexes.push((id, ServedIndex::Single(Arc::new(index))));
        }
    }

    let server = match Server::new_served(indexes, options) {
        Ok(server) => server,
        Err(e) => return fail(e),
    };
    let listener = match (socket, tcp) {
        (Some(path), None) => {
            match Listener::bind_unix(std::path::Path::new(path.as_str())) {
                Ok(l) => l,
                Err(e) => return fail(format_args!("cannot bind {path}: {e}")),
            }
        }
        (None, Some(addr)) => match Listener::bind_tcp(addr) {
            Ok(l) => l,
            Err(e) => return fail(format_args!("cannot bind {addr}: {e}")),
        },
        _ => unreachable!("validated above"),
    };
    // Scripts wait for this line (and, for --tcp with port 0, parse the
    // actual address out of it) before connecting.
    println!("listening on {}", listener.local_addr_string());
    let _ = io::stdout().flush();

    let served = server.serve(listener);
    if let Some(path) = socket {
        let _ = std::fs::remove_file(path);
    }
    match served {
        Ok(()) => {
            eprintln!("shut down after draining connections");
            ExitCode::SUCCESS
        }
        Err(e) => fail(format_args!("serve failed: {e}")),
    }
}

/// Connection flags shared by every `sxsi client` op.
fn connect_client(socket: Option<&String>, tcp: Option<&String>) -> Result<Client, String> {
    match (socket, tcp) {
        (Some(path), None) => Client::connect_unix(std::path::Path::new(path.as_str()))
            .map_err(|e| format!("cannot connect to {path}: {e}")),
        (None, Some(addr)) => {
            Client::connect_tcp(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
        }
        _ => Err("client expects exactly one of --socket or --tcp before the op".into()),
    }
}

/// `sxsi client`: one op against a running daemon.
fn cmd_client(args: &[String]) -> ExitCode {
    let mut socket: Option<&String> = None;
    let mut tcp: Option<&String> = None;
    let mut it = args.iter();
    let op = loop {
        match it.next().map(String::as_str) {
            Some("--socket") => match it.next() {
                Some(path) => socket = Some(path),
                None => return usage_error("--socket expects a path"),
            },
            Some("--tcp") => match it.next() {
                Some(addr) => tcp = Some(addr),
                None => return usage_error("--tcp expects an address"),
            },
            Some(flag) if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}' before the client op"))
            }
            Some(op) => break op,
            None => {
                return usage_error(
                    "client expects an op (query/exists/search/stats/info/ping/shutdown)",
                )
            }
        }
    };
    let rest: Vec<&String> = it.collect();
    let mut client = match connect_client(socket, tcp) {
        Ok(client) => client,
        Err(e) => return fail(e),
    };
    match op {
        "query" => client_query(&mut client, &rest, false),
        "exists" => client_query(&mut client, &rest, true),
        "search" => client_search(&mut client, &rest),
        "stats" => client_body(client.stats()),
        "info" => client_body(client.info()),
        "ping" => match client.ping() {
            Ok(()) => {
                println!("pong");
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "shutdown" => match client.shutdown() {
            Ok(()) => {
                println!("server shutting down");
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        other => usage_error(&format!("unknown client op '{other}'")),
    }
}

fn client_body(body: Result<String, sxsi_engine::server::client::ClientError>) -> ExitCode {
    match body {
        Ok(body) => {
            let stdout = io::stdout();
            let mut out = io::BufWriter::new(stdout.lock());
            match check_stdout_write(out.write_all(body.as_bytes()).and_then(|()| out.flush())) {
                WriteOutcome::Failed(code) => code,
                _ => ExitCode::SUCCESS,
            }
        }
        Err(e) => fail(e),
    }
}

/// The `query` and `exists` client ops.  The printed body is exactly
/// what the in-process subcommand would print; error frames map back to
/// the CLI exit-code taxonomy (`unsupported-query` → 3), and `exists`
/// keeps its "4 when any query matched nothing" contract via the
/// response's `all_found=` detail.
fn client_query(client: &mut Client, args: &[&String], exists: bool) -> ExitCode {
    let mut index_id: Option<&String> = None;
    let mut materialize = false;
    let mut serialize = false;
    let mut limit: Option<u64> = None;
    let mut offset = 0u64;
    let mut xpaths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--index" => match it.next() {
                Some(id) => index_id = Some(id),
                None => return usage_error("--index expects an index id"),
            },
            "--materialize" if !exists => materialize = true,
            "--serialize" if !exists => serialize = true,
            "--limit" if !exists => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => limit = Some(n),
                None => return usage_error("--limit expects a non-negative integer"),
            },
            "--offset" if !exists => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => offset = n,
                None => return usage_error("--offset expects a non-negative integer"),
            },
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => xpaths.push(arg.as_str()),
        }
    }
    if xpaths.is_empty() {
        return usage_error("expected at least one XPath expression");
    }
    let output = if exists {
        OutputKind::Exists
    } else if serialize {
        OutputKind::Serialize
    } else if materialize {
        OutputKind::Nodes
    } else {
        OutputKind::Count
    };
    match client.query(index_id.map(String::as_str), output, limit, offset, &xpaths) {
        Ok(Response::Ok { detail, body }) => {
            let stdout = io::stdout();
            let mut out = io::BufWriter::new(stdout.lock());
            if let WriteOutcome::Failed(code) =
                check_stdout_write(out.write_all(body.as_bytes()).and_then(|()| out.flush()))
            {
                return code;
            }
            eprintln!("server: {detail}");
            if exists && detail.split_whitespace().any(|t| t == "all_found=false") {
                return ExitCode::from(4);
            }
            ExitCode::SUCCESS
        }
        Ok(Response::Err { code, message }) => {
            eprintln!("sxsi: error={code} {message}");
            ExitCode::from(exit_code_for(code) as u8)
        }
        Err(e) => fail(e),
    }
}

/// The `search` client op.  The printed body is exactly what the
/// in-process `sxsi search` subcommand would print for the same served
/// index (the shared renderer guarantees it, score precision included).
fn client_search(client: &mut Client, args: &[&String]) -> ExitCode {
    let mut index_id: Option<&String> = None;
    let mut mode = "all";
    let mut limit: Option<u64> = None;
    let mut terms: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--index" => match it.next() {
                Some(id) => index_id = Some(id),
                None => return usage_error("--index expects an index id"),
            },
            "--mode" => match it.next().map(|m| m.as_str()) {
                Some(m @ ("all" | "any" | "phrase")) => mode = m,
                _ => return usage_error("--mode expects all, any or phrase"),
            },
            "--limit" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => limit = Some(n),
                None => return usage_error("--limit expects a non-negative integer"),
            },
            flag if flag.starts_with("--") => {
                return usage_error(&format!("unknown option '{flag}'"))
            }
            _ => terms.push(arg.as_str()),
        }
    }
    if terms.is_empty() {
        return usage_error("expected at least one search term");
    }
    match client.search(index_id.map(String::as_str), mode, limit, &terms) {
        Ok(Response::Ok { detail, body }) => {
            let stdout = io::stdout();
            let mut out = io::BufWriter::new(stdout.lock());
            if let WriteOutcome::Failed(code) =
                check_stdout_write(out.write_all(body.as_bytes()).and_then(|()| out.flush()))
            {
                return code;
            }
            eprintln!("server: {detail}");
            ExitCode::SUCCESS
        }
        Ok(Response::Err { code, message }) => {
            eprintln!("sxsi: error={code} {message}");
            ExitCode::from(exit_code_for(code) as u8)
        }
        Err(e) => fail(e),
    }
}

/// `sxsi queries`: dump the paper's query sets for shell scripting.
fn cmd_queries(args: &[String]) -> ExitCode {
    let mut set = "paper";
    let mut print0 = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--print0" => print0 = true,
            "--set" => match it.next().map(String::as_str) {
                Some(s @ ("paper" | "ordered")) => set = s,
                _ => return usage_error("--set expects 'paper' or 'ordered'"),
            },
            flag => return usage_error(&format!("unknown option '{flag}'")),
        }
    }
    let terminator = if print0 { b'\0' } else { b'\n' };
    let mut records: Vec<String> = Vec::new();
    if set == "paper" {
        for group in [
            sxsi_xpath::XMARK_QUERIES,
            sxsi_xpath::TREEBANK_QUERIES,
            sxsi_xpath::MEDLINE_QUERIES,
            sxsi_xpath::WORD_QUERIES,
        ] {
            records.extend(group.iter().map(|q| format!("{}\t{}", q.id, q.xpath)));
        }
    } else {
        records.extend(
            sxsi_xpath::ORDERED_QUERIES
                .iter()
                .map(|q| format!("{}\t{}\t{}", q.id, q.corpus, q.xpath)),
        );
    }
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    let written: io::Result<()> = records
        .iter()
        .try_for_each(|record| {
            out.write_all(record.as_bytes())?;
            out.write_all(&[terminator])
        })
        .and_then(|()| out.flush());
    match check_stdout_write(written) {
        WriteOutcome::Failed(code) => code,
        _ => ExitCode::SUCCESS,
    }
}
