//! The `sxsi serve` daemon: a long-lived process that loads `.sxsi`
//! indexes once, keeps them warm behind `Arc`, and answers XPath
//! queries over a length-prefixed framed protocol on a TCP or Unix
//! socket — so callers stop paying process startup plus a full index
//! load per query (the paper's headline latency is index-resident).
//!
//! Architecture (one connection = one thread; all shared state is the
//! immutable indexes plus three synchronized sinks):
//!
//! ```text
//!  clients ──frames──▶ accept loop ──▶ handler thread per connection
//!                                        │  hello → command loop
//!                                        ▼
//!                 ┌── plan cache (LRU: query string → Arc<Prepared>)
//!                 ├── result cache (LRU: (index, query, options, output)
//!                 │                       → rendered body)
//!                 ├── BatchExecutor fan-out for the cache misses
//!                 └── metrics sink (latency/visited histograms, counters)
//! ```
//!
//! Robustness is part of the contract: per-connection read timeouts,
//! structured `error code=…` frames for every failure (reusing the
//! CLI's exit-3 `unsupported-query` taxonomy), rejection of oversized
//! or truncated frames, and graceful shutdown with connection draining
//! (in-flight requests complete; idle connections are told
//! `shutting-down`).  See `docs/protocol.md` for the wire format and
//! `tests/integration_server.rs` for the equivalence and hostile-input
//! suites.

pub mod cache;
pub mod client;
pub mod metrics;
pub mod protocol;

use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sxsi::{Prepared, QueryError, QueryMode, QueryOptions, SxsiIndex};
use sxsi_collection::Collection;

use crate::collection::{render_collection_result, CollectionExecutor, CollectionQueryError};
use crate::search::{query_display, render_search_outcome, search_collection, search_index};
use crate::{BatchExecutor, BatchResult, QueryBatch, QuerySpec};
use sxsi::{FtMode, FtQuery};
use cache::LruCache;
use metrics::Metrics;
use protocol::{
    escape_query, read_frame, unescape_query, write_frame, ErrorCode, FrameError, Response,
    MAX_REQUEST_FRAME, PROTOCOL_VERSION,
};

/// How a query's answer is rendered in the response body — exactly the
/// four output shapes of the CLI (`query`, `query --materialize`,
/// `query --serialize`, `exists`), so daemon responses are byte-
/// identical to in-process CLI output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputKind {
    /// `<query>: <count>` per query (the CLI's default).
    Count,
    /// `<query>: <n> nodes [<preorders>]` per query (`--materialize`).
    Nodes,
    /// `<query>:` then one line per serialized subtree (`--serialize`).
    Serialize,
    /// `<query>: <true|false>` per query (the `exists` subcommand).
    Exists,
}

impl OutputKind {
    /// The wire token (`output=<token>` in the `query` command).
    pub fn as_str(self) -> &'static str {
        match self {
            OutputKind::Count => "count",
            OutputKind::Nodes => "nodes",
            OutputKind::Serialize => "serialize",
            OutputKind::Exists => "exists",
        }
    }

    /// Parses a wire token.
    pub fn parse(token: &str) -> Option<Self> {
        Some(match token {
            "count" => OutputKind::Count,
            "nodes" => OutputKind::Nodes,
            "serialize" => OutputKind::Serialize,
            "exists" => OutputKind::Exists,
            _ => return None,
        })
    }

    /// The [`QueryMode`] this output needs from the evaluator.
    pub fn query_mode(self) -> QueryMode {
        match self {
            OutputKind::Count => QueryMode::Count,
            OutputKind::Nodes | OutputKind::Serialize => QueryMode::Nodes,
            OutputKind::Exists => QueryMode::Exists,
        }
    }
}

/// Renders one batch result the way the `sxsi` CLI prints it — the
/// single formatting implementation shared by `sxsi query`/`sxsi
/// exists` and the daemon, so the two can never diverge byte-wise.
pub fn render_batch_result(
    index: &SxsiIndex,
    result: &BatchResult,
    output: OutputKind,
    out: &mut String,
) {
    let more = if result.result.truncated() { " (more results exist)" } else { "" };
    match output {
        OutputKind::Exists => {
            let _ = writeln!(out, "{}: {}", result.id, result.result.exists());
        }
        OutputKind::Count => {
            let _ = writeln!(out, "{}: {}{more}", result.id, result.result.count());
        }
        OutputKind::Nodes => {
            let nodes = result.result.nodes().unwrap_or(&[]);
            let preorders: Vec<String> =
                nodes.iter().map(|&n| index.tree().preorder(n).to_string()).collect();
            let _ = writeln!(
                out,
                "{}: {} nodes [{}]{more}",
                result.id,
                nodes.len(),
                preorders.join(", ")
            );
        }
        OutputKind::Serialize => {
            let _ = writeln!(out, "{}:{more}", result.id);
            for &node in result.result.nodes().unwrap_or(&[]) {
                let _ = writeln!(out, "{}", index.get_subtree(node));
            }
        }
    }
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads for each request's [`BatchExecutor`] fan-out;
    /// `0` means the machine's available parallelism.
    pub threads: usize,
    /// Capacity of the compiled-plan LRU (query string → `Prepared`).
    pub plan_cache_capacity: usize,
    /// Capacity of the result LRU (`(index, query, options, output)` →
    /// rendered body).
    pub result_cache_capacity: usize,
    /// How long a connection may idle between frames before the server
    /// sends a `timeout` error frame and closes it.
    pub read_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            // The fxi daemon's 128-entry default has proven a good
            // size/hit-rate balance for interactive query workloads.
            plan_cache_capacity: 128,
            result_cache_capacity: 128,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// How often blocked reads and the accept loop wake up to check the
/// shutdown flag and the idle deadline.
const POLL_TICK: Duration = Duration::from_millis(50);

/// A socket the server accepts connections on.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener (e.g. `127.0.0.1:7878`).
    Tcp(TcpListener),
    /// A Unix-domain socket listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds a TCP listener.
    pub fn bind_tcp(addr: &str) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix-domain socket listener, replacing a stale socket
    /// file (one nothing is listening on) if present.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path) -> io::Result<Listener> {
        match UnixListener::bind(path) {
            Ok(l) => Ok(Listener::Unix(l)),
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                if UnixStream::connect(path).is_ok() {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("{} is already being served", path.display()),
                    ));
                }
                std::fs::remove_file(path)?;
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            Err(e) => Err(e),
        }
    }

    /// A printable form of the bound address (for logs and tests; for
    /// TCP this includes the ephemeral port actually bound).
    pub fn local_addr_string(&self) -> String {
        match self {
            Listener::Tcp(l) => {
                l.local_addr().map_or_else(|_| "<tcp>".into(), |a| a.to_string())
            }
            #[cfg(unix)]
            Listener::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
                .unwrap_or_else(|| "<unix>".into()),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

/// One accepted connection, TCP or Unix.
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn set_timeouts(&self) -> io::Result<()> {
        // Reads tick at POLL_TICK so the handler can notice shutdown
        // and enforce the idle deadline itself; writes get a generous
        // fixed timeout so a wedged peer cannot stall draining forever.
        let write = Some(Duration::from_secs(30));
        match self {
            Conn::Tcp(s) => {
                // Request/response over small frames: Nagle only adds
                // delayed-ACK latency here, so turn it off.
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(POLL_TICK))?;
                s.set_write_timeout(write)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_read_timeout(Some(POLL_TICK))?;
                s.set_write_timeout(write)
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Wraps a connection so blocked reads wake up every [`POLL_TICK`]: a
/// frame-boundary wait aborts promptly on shutdown, and the configured
/// idle deadline is enforced without losing partially read frames
/// (all buffering lives in the caller's `read_frame`).
struct PollingReader<'a> {
    conn: &'a mut Conn,
    shutdown: &'a AtomicBool,
    deadline: Instant,
    started: bool,
}

/// Marker kind for "aborted because the server is shutting down".
const SHUTDOWN_ABORT: io::ErrorKind = io::ErrorKind::ConnectionAborted;

impl Read for PollingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.conn.read(buf) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    self.started = true;
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    // Between frames, shutdown closes the connection;
                    // mid-frame, the sender is given until the idle
                    // deadline to finish what it started.
                    if !self.started && self.shutdown.load(Ordering::SeqCst) {
                        return Err(io::Error::new(SHUTDOWN_ABORT, "server shutting down"));
                    }
                    if Instant::now() >= self.deadline {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "idle timeout"));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// What a server id resolves to: one warm index, or a whole collection
/// served as one logical index (queries fan out across its documents and
/// come back merged, DocId-qualified).
#[derive(Clone)]
pub enum ServedIndex {
    /// A single `.sxsi` index.
    Single(Arc<SxsiIndex>),
    /// A multi-document `.sxsic` collection.
    Collection(Arc<Collection>),
}

struct NamedIndex {
    id: String,
    served: ServedIndex,
}

type PlanKey = (usize, String);
/// The `u64` is the served identity folded into result-cache keys: `0`
/// for a single index (the slot already identifies it), the manifest
/// fingerprint for a collection — so cached bodies are keyed to the
/// exact manifest they were computed from.
type ResultKey = (usize, u64, String, QueryOptions, OutputKind);
/// Keyword-search results cache in their own LRU (same slot/fingerprint
/// scheme, canonical request string as the query component) rather than
/// widening [`ResultKey`]: a search body is not a query body, and keeping
/// the keyspaces apart means neither command can poison the other's
/// entries or skew its hit-rate counters.
type SearchKey = (usize, u64, String);

struct ServerInner {
    indexes: Vec<NamedIndex>,
    options: ServeOptions,
    executor: BatchExecutor,
    plan_cache: Mutex<LruCache<PlanKey, Arc<Prepared>>>,
    result_cache: Mutex<LruCache<ResultKey, Arc<str>>>,
    search_cache: Mutex<LruCache<SearchKey, Arc<str>>>,
    metrics: Metrics,
    shutdown: AtomicBool,
}

/// A warm-index query daemon.  Construct with [`Server::new`], then run
/// [`Server::serve`] on a bound [`Listener`]; `serve` returns after a
/// graceful shutdown (the `shutdown` protocol command or
/// [`Server::shutdown`]) once every in-flight connection has drained.
///
/// The handle is cheaply cloneable (it is an `Arc` internally), so a
/// controlling thread can keep one clone to call `shutdown` on.
#[derive(Clone)]
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Creates a server over the given `(id, index)` pairs.
    ///
    /// Fails if no index is given or two share an id.  The indexes stay
    /// warm behind `Arc` for the server's lifetime; queries address
    /// them by id (`index=<id>`), defaulting to the only index when
    /// exactly one is loaded.
    pub fn new(
        indexes: Vec<(String, Arc<SxsiIndex>)>,
        options: ServeOptions,
    ) -> Result<Server, String> {
        Server::new_served(
            indexes
                .into_iter()
                .map(|(id, index)| (id, ServedIndex::Single(index)))
                .collect(),
            options,
        )
    }

    /// Creates a server over a mix of single indexes and collections —
    /// a collection is addressed by one id and answers as one logical
    /// index, with nodes qualified as `doc-name:preorder`.
    pub fn new_served(
        indexes: Vec<(String, ServedIndex)>,
        options: ServeOptions,
    ) -> Result<Server, String> {
        if indexes.is_empty() {
            return Err("a server needs at least one index".into());
        }
        let mut seen = std::collections::HashSet::new();
        for (id, _) in &indexes {
            if !seen.insert(id.as_str()) {
                return Err(format!("duplicate index id '{id}'"));
            }
            if id.is_empty() || id.contains(|c: char| c.is_whitespace() || c == '=') {
                return Err(format!("index id '{id}' must be non-empty without spaces or '='"));
            }
        }
        let executor = if options.threads == 0 {
            BatchExecutor::with_available_parallelism()
        } else {
            BatchExecutor::new(options.threads)
        };
        Ok(Server {
            inner: Arc::new(ServerInner {
                indexes: indexes
                    .into_iter()
                    .map(|(id, served)| NamedIndex { id, served })
                    .collect(),
                plan_cache: Mutex::new(LruCache::new(options.plan_cache_capacity)),
                result_cache: Mutex::new(LruCache::new(options.result_cache_capacity)),
                search_cache: Mutex::new(LruCache::new(options.result_cache_capacity)),
                metrics: Metrics::new(),
                shutdown: AtomicBool::new(false),
                executor,
                options,
            }),
        })
    }

    /// The metrics sink (shared with every connection handler).
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Requests a graceful shutdown: the accept loop stops, idle
    /// connections are closed with a `shutting-down` error frame, and
    /// [`Server::serve`] returns once in-flight requests have drained.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Handles one decoded request payload, returning the rendered response
    /// frame and whether the connection should close afterwards.
    ///
    /// This is the daemon's untrusted-input boundary (everything after
    /// frame length decoding), exposed so the structure-aware fuzzer and
    /// protocol tests can drive it directly with arbitrary payloads
    /// without a socket.
    pub fn handle_command(&self, payload: &[u8]) -> (Vec<u8>, bool) {
        self.inner.handle_command(payload)
    }

    /// Renders the `stats` body (also available without a connection,
    /// e.g. for tests): the metrics sink plus both caches' counters.
    pub fn render_stats(&self) -> String {
        self.inner.render_stats()
    }

    /// Runs the accept loop until shutdown, then drains: every
    /// connection handler is joined before this returns.
    pub fn serve(&self, listener: Listener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok(conn) => {
                    self.inner.metrics.record_connection();
                    let inner = Arc::clone(&self.inner);
                    handles.push(std::thread::spawn(move || inner.handle_connection(conn)));
                    // Reap finished handlers so a long-lived daemon does
                    // not accumulate join handles.
                    handles.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_TICK);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// An error a command handler reports back as an `error code=…` frame.
type CommandError = (ErrorCode, String);

impl ServerInner {
    fn handle_connection(self: Arc<Self>, mut conn: Conn) {
        if conn.set_timeouts().is_err() {
            return;
        }
        // Handshake: the first frame must be a matching `hello`.
        match self.read_request(&mut conn) {
            Ok(payload) => match parse_hello(&payload) {
                Ok(()) => {
                    let detail =
                        format!("sxsi-serve {PROTOCOL_VERSION} indexes={}", self.indexes.len());
                    if write_frame(&mut conn, &Response::render_ok(&detail, "")).is_err() {
                        return;
                    }
                }
                Err((code, message)) => {
                    self.metrics.record_error();
                    let _ = write_frame(&mut conn, &Response::render_error(code, &message));
                    return;
                }
            },
            Err(close) => {
                self.report_read_error(&mut conn, close);
                return;
            }
        }
        // Command loop.
        loop {
            let payload = match self.read_request(&mut conn) {
                Ok(payload) => payload,
                Err(close) => {
                    self.report_read_error(&mut conn, close);
                    return;
                }
            };
            self.metrics.record_request();
            let (response, close) = self.handle_command(&payload);
            if write_frame(&mut conn, &response).is_err() || close {
                return;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
    }

    /// Reads one request frame, waking every [`POLL_TICK`] to honor the
    /// shutdown flag and the idle deadline.
    fn read_request(&self, conn: &mut Conn) -> Result<Vec<u8>, Option<CommandError>> {
        let mut reader = PollingReader {
            conn,
            shutdown: &self.shutdown,
            deadline: Instant::now() + self.options.read_timeout,
            started: false,
        };
        match read_frame(&mut reader, MAX_REQUEST_FRAME) {
            Ok(payload) => Ok(payload),
            Err(FrameError::Closed) => Err(None),
            Err(FrameError::Truncated { got, expected }) => Err(Some((
                ErrorCode::TruncatedFrame,
                format!("connection closed mid-frame: got {got} of {expected} bytes"),
            ))),
            Err(FrameError::Oversized { len, max }) => Err(Some((
                ErrorCode::OversizedFrame,
                format!("announced frame of {len} bytes exceeds the {max}-byte cap"),
            ))),
            Err(FrameError::TimedOut) => Err(Some((
                ErrorCode::Timeout,
                format!("no frame within {:?}", self.options.read_timeout),
            ))),
            Err(FrameError::Io(e)) if e.kind() == SHUTDOWN_ABORT => {
                Err(Some((ErrorCode::ShuttingDown, "server is shutting down".into())))
            }
            Err(FrameError::Io(_)) => Err(None),
        }
    }

    /// Best-effort error frame for a connection being dropped; `None`
    /// means a clean close (no frame owed).
    fn report_read_error(&self, conn: &mut Conn, close: Option<CommandError>) {
        if let Some((code, message)) = close {
            self.metrics.record_error();
            let _ = write_frame(conn, &Response::render_error(code, &message));
        }
    }

    fn handle_command(&self, payload: &[u8]) -> (Vec<u8>, bool) {
        let outcome = self.dispatch(payload);
        match outcome {
            Ok((detail, body, close)) => (Response::render_ok(&detail, &body), close),
            Err((code, message)) => {
                self.metrics.record_error();
                (Response::render_error(code, &message), false)
            }
        }
    }

    /// Runs one command; `Ok` carries `(detail, body, close_after)`.
    fn dispatch(&self, payload: &[u8]) -> Result<(String, String, bool), CommandError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| (ErrorCode::BadFrame, "payload is not valid UTF-8".to_string()))?;
        let (command_line, rest) = text.split_once('\n').unwrap_or((text, ""));
        let mut tokens = command_line.split_whitespace();
        let command = tokens
            .next()
            .ok_or_else(|| (ErrorCode::BadFrame, "empty command".to_string()))?;
        match command {
            "hello" => {
                // A repeated hello is harmless: re-acknowledge.
                parse_hello(payload)?;
                Ok((
                    format!("sxsi-serve {PROTOCOL_VERSION} indexes={}", self.indexes.len()),
                    String::new(),
                    false,
                ))
            }
            "ping" => Ok(("pong".to_string(), String::new(), false)),
            "stats" => Ok((String::new(), self.render_stats(), false)),
            "info" => Ok((String::new(), self.render_info(), false)),
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(("shutting-down".to_string(), String::new(), true))
            }
            "query" => self.handle_query(tokens, rest).map(|(detail, body)| (detail, body, false)),
            "search" => {
                self.handle_search(tokens, rest).map(|(detail, body)| (detail, body, false))
            }
            other => {
                Err((ErrorCode::UnknownCommand, format!("unknown command '{other}'")))
            }
        }
    }

    fn resolve_index(&self, id: Option<&str>) -> Result<usize, CommandError> {
        match id {
            Some(id) => self
                .indexes
                .iter()
                .position(|n| n.id == id)
                .ok_or_else(|| {
                    let loaded: Vec<&str> =
                        self.indexes.iter().map(|n| n.id.as_str()).collect();
                    (
                        ErrorCode::UnknownIndex,
                        format!("no index '{id}' (loaded: {})", loaded.join(", ")),
                    )
                }),
            None if self.indexes.len() == 1 => Ok(0),
            None => Err((
                ErrorCode::BadArgument,
                format!("index=<id> is required with {} indexes loaded", self.indexes.len()),
            )),
        }
    }

    fn handle_query<'a>(
        &self,
        args: impl Iterator<Item = &'a str>,
        rest: &str,
    ) -> Result<(String, String), CommandError> {
        let mut index_id: Option<&str> = None;
        let mut output = OutputKind::Count;
        let mut limit: Option<u64> = None;
        let mut offset: u64 = 0;
        for arg in args {
            let (key, value) = arg.split_once('=').ok_or_else(|| {
                (ErrorCode::BadArgument, format!("malformed argument '{arg}' (expected key=value)"))
            })?;
            match key {
                "index" => index_id = Some(value),
                "output" => {
                    output = OutputKind::parse(value).ok_or_else(|| {
                        (ErrorCode::BadArgument, format!("unknown output kind '{value}'"))
                    })?;
                }
                "limit" => {
                    limit = if value == "none" {
                        None
                    } else {
                        Some(value.parse().map_err(|_| {
                            (ErrorCode::BadArgument, format!("bad limit '{value}'"))
                        })?)
                    };
                }
                "offset" => {
                    offset = value.parse().map_err(|_| {
                        (ErrorCode::BadArgument, format!("bad offset '{value}'"))
                    })?;
                }
                other => {
                    return Err((
                        ErrorCode::BadArgument,
                        format!("unknown query argument '{other}'"),
                    ))
                }
            }
        }
        let slot = self.resolve_index(index_id)?;

        let mut xpaths = Vec::new();
        for line in rest.lines() {
            if line.is_empty() {
                continue;
            }
            let xpath = unescape_query(line).ok_or_else(|| {
                (ErrorCode::BadArgument, format!("malformed query encoding '{line}'"))
            })?;
            xpaths.push(xpath);
        }
        if xpaths.is_empty() {
            return Err((ErrorCode::BadArgument, "query needs at least one expression".into()));
        }

        let options = QueryOptions {
            mode: output.query_mode(),
            limit,
            offset,
            // Always collected: the visited-node histogram feeds on it.
            collect_stats: true,
        };

        // lint:allow(index: resolve_index returned a valid position)
        match &self.indexes[slot].served {
            ServedIndex::Single(index) => {
                self.answer_single(slot, &Arc::clone(index), xpaths, options, output)
            }
            ServedIndex::Collection(collection) => {
                self.answer_collection(slot, &Arc::clone(collection), xpaths, options, output)
            }
        }
    }

    /// Answers a query batch against one single index: result-cache
    /// lookups, plan-cached compilation, executor fan-out.
    fn answer_single(
        &self,
        slot: usize,
        index: &SxsiIndex,
        xpaths: Vec<String>,
        options: QueryOptions,
        output: OutputKind,
    ) -> Result<(String, String), CommandError> {
        // Phase 1: result-cache lookups, preserving request order.
        // Duplicate expressions within one request share a single
        // execution but are rendered once per occurrence, matching the
        // CLI printing one line per batch spec.
        let mut bodies: std::collections::HashMap<&str, Arc<str>> =
            std::collections::HashMap::new();
        let mut misses: Vec<&str> = Vec::new();
        {
            // lint:allow(panic: poisoning means another worker already panicked)
            let mut result_cache = self.result_cache.lock().expect("result cache poisoned");
            for xpath in &xpaths {
                if bodies.contains_key(xpath.as_str()) || misses.contains(&xpath.as_str()) {
                    continue;
                }
                let key: ResultKey = (slot, 0, xpath.clone(), options, output);
                match result_cache.get(&key) {
                    Some(body) => {
                        self.metrics.record_cached_query();
                        bodies.insert(xpath.as_str(), Arc::clone(body));
                    }
                    None => misses.push(xpath.as_str()),
                }
            }
        }
        let cache_hits = bodies.len();

        // Phase 2: prepare the misses through the plan cache (compile
        // errors reject the whole request, like the CLI's batch
        // compile), fan them out across the executor, render, insert.
        if !misses.is_empty() {
            let mut prepared_misses: Vec<(QuerySpec, Arc<Prepared>)> = Vec::new();
            for &xpath in &misses {
                let prepared = self.prepare_cached(slot, index, xpath)?;
                prepared_misses
                    .push((QuerySpec::new(xpath, xpath, options), prepared));
            }
            let batch = QueryBatch::from_prepared(prepared_misses);
            let results = self.executor.run(index, &batch);
            // lint:allow(panic: poisoning means another worker already panicked)
            let mut result_cache = self.result_cache.lock().expect("result cache poisoned");
            for result in &results {
                let mut rendered = String::new();
                render_batch_result(index, result, output, &mut rendered);
                let visited = result.result.stats().map(|s| s.visited_nodes);
                self.metrics.record_executed_query(result.elapsed, visited);
                let body: Arc<str> = Arc::from(rendered);
                result_cache
                    .insert((slot, 0, result.id.clone(), options, output), Arc::clone(&body));
                let Some(miss) = misses.iter().copied().find(|&m| m == result.id) else {
                    // Executor results always echo a requested id; if that
                    // ever breaks, answer with a structured server bug
                    // instead of panicking the worker.
                    return Err((
                        ErrorCode::Internal,
                        format!("executor returned unknown result id '{}'", escape_query(&result.id)),
                    ));
                };
                bodies.insert(miss, body);
            }
        }

        // Phase 3: assemble the body in request order.
        let mut body = String::new();
        let mut all_found = true;
        for xpath in &xpaths {
            let Some(rendered) = bodies.get(xpath.as_str()) else {
                return Err((
                    ErrorCode::Internal,
                    format!("no rendered body for query '{}'", escape_query(xpath)),
                ));
            };
            if output == OutputKind::Exists && rendered.trim_end().ends_with("false") {
                all_found = false;
            }
            body.push_str(rendered);
        }
        let mut detail = format!("queries={} cache_hits={cache_hits}", xpaths.len());
        if output == OutputKind::Exists {
            let _ = write!(detail, " all_found={all_found}");
        }
        Ok((detail, body))
    }

    /// Answers a query batch against a collection served as one logical
    /// index.  The result cache applies (keyed by the manifest
    /// fingerprint); the plan cache does not — a `Prepared` is only
    /// valid for the index it was compiled against, so collections
    /// prepare per document inside the fan-out.
    fn answer_collection(
        &self,
        slot: usize,
        collection: &Arc<Collection>,
        xpaths: Vec<String>,
        options: QueryOptions,
        output: OutputKind,
    ) -> Result<(String, String), CommandError> {
        let fingerprint = collection.fingerprint();
        let mut bodies: std::collections::HashMap<&str, Arc<str>> =
            std::collections::HashMap::new();
        let mut misses: Vec<&str> = Vec::new();
        {
            // lint:allow(panic: poisoning means another worker already panicked)
            let mut result_cache = self.result_cache.lock().expect("result cache poisoned");
            for xpath in &xpaths {
                if bodies.contains_key(xpath.as_str()) || misses.contains(&xpath.as_str()) {
                    continue;
                }
                let key: ResultKey = (slot, fingerprint, xpath.clone(), options, output);
                match result_cache.get(&key) {
                    Some(body) => {
                        self.metrics.record_cached_query();
                        bodies.insert(xpath.as_str(), Arc::clone(body));
                    }
                    None => misses.push(xpath.as_str()),
                }
            }
        }
        let cache_hits = bodies.len();

        let executor = CollectionExecutor::new(self.executor.threads());
        for &xpath in &misses {
            let start = Instant::now();
            let result = executor.run(collection, xpath, &options).map_err(|e| match e {
                CollectionQueryError::Prepare { error: QueryError::Compile(detail), .. } => (
                    ErrorCode::UnsupportedQuery,
                    format!("query='{}' detail='{detail}'", escape_query(xpath)),
                ),
                CollectionQueryError::Prepare { error, .. } => (
                    ErrorCode::ParseError,
                    format!("query='{}' detail='{error}'", escape_query(xpath)),
                ),
                CollectionQueryError::Load(e) => {
                    (ErrorCode::Internal, format!("collection segment failure: {e}"))
                }
            })?;
            let elapsed = start.elapsed();
            let mut rendered = String::new();
            render_collection_result(collection, xpath, &result, output, &mut rendered);
            let visited = result.stats().map(|s| s.visited_nodes);
            self.metrics.record_executed_query(elapsed, visited);
            let body: Arc<str> = Arc::from(rendered);
            self.result_cache
                .lock()
                .expect("result cache poisoned") // lint:allow(panic: poisoning means another worker already panicked)
                .insert((slot, fingerprint, xpath.to_string(), options, output), Arc::clone(&body));
            bodies.insert(xpath, body);
        }

        let mut body = String::new();
        let mut all_found = true;
        for xpath in &xpaths {
            let Some(rendered) = bodies.get(xpath.as_str()) else {
                return Err((
                    ErrorCode::Internal,
                    format!("no rendered body for query '{}'", escape_query(xpath)),
                ));
            };
            if output == OutputKind::Exists && rendered.trim_end().ends_with("false") {
                all_found = false;
            }
            body.push_str(rendered);
        }
        let mut detail = format!("queries={} cache_hits={cache_hits}", xpaths.len());
        if output == OutputKind::Exists {
            let _ = write!(detail, " all_found={all_found}");
        }
        Ok((detail, body))
    }

    /// Handles the `search` command: `search [index=<id>] [mode=all|any|
    /// phrase] [limit=<n>]` with one escaped search term per body line.
    /// Bodies render exactly like `sxsi search` prints them and cache in
    /// the dedicated search LRU (see [`SearchKey`]); hits and misses feed
    /// the same query counters and latency histograms as `query`.
    fn handle_search<'a>(
        &self,
        args: impl Iterator<Item = &'a str>,
        rest: &str,
    ) -> Result<(String, String), CommandError> {
        let mut index_id: Option<&str> = None;
        let mut mode = FtMode::All;
        let mut limit: Option<usize> = None;
        for arg in args {
            let (key, value) = arg.split_once('=').ok_or_else(|| {
                (ErrorCode::BadArgument, format!("malformed argument '{arg}' (expected key=value)"))
            })?;
            match key {
                "index" => index_id = Some(value),
                "mode" => {
                    mode = FtMode::parse(value).ok_or_else(|| {
                        (
                            ErrorCode::BadArgument,
                            format!("unknown search mode '{value}' (expected all, any or phrase)"),
                        )
                    })?;
                }
                "limit" => {
                    limit = if value == "none" {
                        None
                    } else {
                        Some(value.parse().map_err(|_| {
                            (ErrorCode::BadArgument, format!("bad limit '{value}'"))
                        })?)
                    };
                }
                other => {
                    return Err((
                        ErrorCode::BadArgument,
                        format!("unknown search argument '{other}'"),
                    ))
                }
            }
        }
        let slot = self.resolve_index(index_id)?;

        let mut terms = Vec::new();
        for line in rest.lines() {
            if line.is_empty() {
                continue;
            }
            let term = unescape_query(line).ok_or_else(|| {
                (ErrorCode::BadArgument, format!("malformed term encoding '{line}'"))
            })?;
            terms.push(term);
        }
        if terms.is_empty() {
            return Err((ErrorCode::BadArgument, "search needs at least one term".into()));
        }
        let query = FtQuery::new(mode, &terms);
        if query.tokens.is_empty() {
            return Err((
                ErrorCode::BadArgument,
                "search terms hold no indexable tokens".into(),
            ));
        }

        // lint:allow(index: resolve_index returned a valid position)
        let named = &self.indexes[slot];
        let fingerprint = match &named.served {
            ServedIndex::Single(_) => 0,
            ServedIndex::Collection(collection) => collection.fingerprint(),
        };
        // Canonical request string: the display form already pins mode and
        // token list; the limit changes the rendered window, so it is part
        // of the key too.
        let id = query_display(&query);
        let canonical = format!("{id} limit={limit:?}");
        let key: SearchKey = (slot, fingerprint, canonical);
        // lint:allow(panic: poisoning means another worker already panicked)
        if let Some(body) = self.search_cache.lock().expect("search cache poisoned").get(&key) {
            self.metrics.record_cached_query();
            let detail = format!("terms={} cache_hits=1", query.tokens.len());
            return Ok((detail, body.to_string()));
        }

        let start = Instant::now();
        let outcome = match &named.served {
            ServedIndex::Single(index) => search_index(index, &named.id, &query, limit),
            ServedIndex::Collection(collection) => {
                let executor = BatchExecutor::new(self.executor.threads());
                search_collection(&executor, collection, &query, limit).map_err(|e| {
                    (ErrorCode::Internal, format!("collection segment failure: {e}"))
                })?
            }
        };
        let elapsed = start.elapsed();
        let mut rendered = String::new();
        render_search_outcome(&id, &outcome, &mut rendered);
        // Searches never report visited-node counts (the FM-index does the
        // work), so only the latency histogram is fed.
        self.metrics.record_executed_query(elapsed, None);
        let body: Arc<str> = Arc::from(rendered);
        self.search_cache
            .lock()
            .expect("search cache poisoned") // lint:allow(panic: poisoning means another worker already panicked)
            .insert(key, Arc::clone(&body));
        Ok((format!("terms={} cache_hits=0", query.tokens.len()), body.to_string()))
    }

    /// Looks a query up in the plan cache, preparing and inserting on a
    /// miss.  Compilation happens outside the lock (it can be slow); a
    /// racing duplicate insert is benign.
    fn prepare_cached(
        &self,
        slot: usize,
        index: &SxsiIndex,
        xpath: &str,
    ) -> Result<Arc<Prepared>, CommandError> {
        let key: PlanKey = (slot, xpath.to_string());
        // lint:allow(panic: poisoning means another worker already panicked)
        if let Some(prepared) = self.plan_cache.lock().expect("plan cache poisoned").get(&key) {
            return Ok(Arc::clone(prepared));
        }
        let prepared = match index.prepare(xpath) {
            Ok(prepared) => Arc::new(prepared),
            Err(QueryError::Compile(e)) => {
                // The CLI's exit-3 taxonomy, as a structured frame.
                return Err((
                    ErrorCode::UnsupportedQuery,
                    format!("query='{}' detail='{e}'", escape_query(xpath)),
                ));
            }
            Err(e) => {
                return Err((
                    ErrorCode::ParseError,
                    format!("query='{}' detail='{e}'", escape_query(xpath)),
                ));
            }
        };
        self.plan_cache
            .lock()
            .expect("plan cache poisoned") // lint:allow(panic: poisoning means another worker already panicked)
            .insert(key, Arc::clone(&prepared));
        Ok(prepared)
    }

    fn render_stats(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "protocol_version={PROTOCOL_VERSION}");
        let _ = writeln!(out, "indexes={}", self.indexes.len());
        let _ = writeln!(out, "executor_threads={}", self.executor.threads());
        self.metrics.render(&mut out);
        render_cache_stats(&mut out, "plan_cache", &self.plan_cache);
        render_cache_stats(&mut out, "result_cache", &self.result_cache);
        render_cache_stats(&mut out, "search_cache", &self.search_cache);
        out
    }

    fn render_info(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "server protocol_version={PROTOCOL_VERSION} uptime_us={} indexes={}",
            self.metrics.uptime().as_micros(),
            self.indexes.len()
        );
        for named in &self.indexes {
            match &named.served {
                ServedIndex::Single(index) => {
                    let stats = index.stats();
                    let _ = writeln!(
                        out,
                        "index id={} nodes={} elements={} texts={} tags={} tree_bytes={} \
                         text_index_bytes={} plain_text_bytes={} total_bytes={}",
                        named.id,
                        stats.num_nodes,
                        stats.num_elements,
                        stats.num_texts,
                        stats.num_tags,
                        stats.tree_bytes,
                        stats.text_index_bytes,
                        stats.plain_text_bytes,
                        stats.total_bytes()
                    );
                    let backends = index.options().succinct;
                    let report = index.verify(sxsi::VerifyDepth::Quick);
                    let _ = writeln!(
                        out,
                        "index-backends id={} rank={} rank_tag={} sequence={} sequence_tag={} \
                         verify={} verify_checks={}",
                        named.id,
                        backends.rank.name(),
                        backends.rank.tag(),
                        backends.sequence.name(),
                        backends.sequence.tag(),
                        if report.is_ok() {
                            "ok".to_string()
                        } else {
                            format!("{}-issues", report.issues.len())
                        },
                        report.checks_run
                    );
                }
                ServedIndex::Collection(collection) => {
                    let manifest = collection.manifest();
                    let nodes: u64 = manifest.docs.iter().map(|d| d.num_nodes).sum();
                    let _ = writeln!(
                        out,
                        "index id={} kind=collection docs={} nodes={nodes} elements={} \
                         texts={} fingerprint={:016x}",
                        named.id,
                        manifest.num_docs(),
                        manifest.total_elements,
                        manifest.total_texts,
                        collection.fingerprint()
                    );
                    for entry in &manifest.docs {
                        let _ = writeln!(
                            out,
                            "collection-doc id={} doc={} name={} segment={} nodes={}",
                            named.id, entry.id, entry.name, entry.segment, entry.num_nodes
                        );
                    }
                }
            }
        }
        out
    }
}

/// Appends one cache's `<name>_*` counter lines to a `stats` body.
fn render_cache_stats<K: std::hash::Hash + Eq, V>(
    out: &mut String,
    name: &str,
    cache: &Mutex<LruCache<K, V>>,
) {
    // lint:allow(panic: poisoning means another worker already panicked)
    let cache = cache.lock().expect("cache poisoned");
    let counters = cache.counters();
    let _ = writeln!(out, "{name}_capacity={}", cache.capacity());
    let _ = writeln!(out, "{name}_len={}", cache.len());
    let _ = writeln!(out, "{name}_hits={}", counters.hits);
    let _ = writeln!(out, "{name}_misses={}", counters.misses);
    let _ = writeln!(out, "{name}_evictions={}", counters.evictions);
    let _ = writeln!(out, "{name}_hit_rate={:.3}", counters.hit_rate());
}

/// Validates a `hello <version>` payload.
fn parse_hello(payload: &[u8]) -> Result<(), CommandError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| (ErrorCode::BadFrame, "hello payload is not valid UTF-8".to_string()))?;
    let mut tokens = text.split_whitespace();
    if tokens.next() != Some("hello") {
        return Err((
            ErrorCode::BadVersion,
            format!("expected 'hello {PROTOCOL_VERSION}' as the first frame"),
        ));
    }
    match tokens.next().and_then(|v| v.parse::<u32>().ok()) {
        Some(PROTOCOL_VERSION) => Ok(()),
        Some(other) => Err((
            ErrorCode::BadVersion,
            format!("protocol version {other} not supported (server speaks {PROTOCOL_VERSION})"),
        )),
        None => Err((
            ErrorCode::BadVersion,
            format!("expected 'hello {PROTOCOL_VERSION}' as the first frame"),
        )),
    }
}
