//! The daemon's metrics sink: request/query counters, uptime, and
//! log-scaled latency / visited-node histograms.
//!
//! Everything here is either atomic or behind a tiny `Mutex`, so the
//! per-connection handler threads record samples without coordinating.
//! The `stats` protocol command renders the whole sink (plus the cache
//! counters, which live inside the caches themselves) as machine-
//! parseable `key=value` lines — see [`super::Server`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of power-of-two buckets a [`Histogram`] keeps (covers values
/// up to `2^39`, i.e. ~9 days in microseconds or half a trillion nodes).
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-size base-2 log-scaled histogram of `u64` samples.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also counts 0.
/// Samples beyond the last bucket clamp into it.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            (63 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Renders the non-empty buckets as `lo-hi:count` pairs separated by
    /// spaces (`lo`/`hi` are the inclusive bucket bounds), e.g.
    /// `0-1:3 2-3:1 64-127:9`.  Empty histograms render as `-`.
    pub fn render(&self) -> String {
        if self.count == 0 {
            return "-".to_string();
        }
        let mut parts = Vec::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lo = if i == 0 { 0 } else { 1u64 << i };
            let hi = (1u64 << (i + 1)) - 1;
            parts.push(format!("{lo}-{hi}:{n}"));
        }
        parts.join(" ")
    }
}

/// The daemon-wide metrics sink.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Protocol commands processed (any kind, including errors).
    requests: AtomicU64,
    /// Individual query executions answered, cache hits included.
    queries: AtomicU64,
    /// Queries answered straight from the result cache.
    cached_queries: AtomicU64,
    /// Requests rejected with an error frame.
    errors: AtomicU64,
    /// Connections accepted.
    connections: AtomicU64,
    histograms: Mutex<HistogramSet>,
}

#[derive(Debug, Default)]
struct HistogramSet {
    /// Per executed (non-cached) query: wall-clock run time in µs.
    latency_us: Histogram,
    /// Per executed (non-cached) query: evaluator visited-node count.
    visited_nodes: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A fresh sink; uptime starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            cached_queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            histograms: Mutex::new(HistogramSet::default()),
        }
    }

    /// Time since the sink (i.e. the server) was created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Counts one accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one processed protocol command.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one error frame sent.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one query answered from the result cache.
    pub fn record_cached_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.cached_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed query: its wall time and, when the run
    /// collected statistics, its visited-node count.
    pub fn record_executed_query(&self, elapsed: Duration, visited_nodes: Option<u64>) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut set = self.histograms.lock().expect("metrics lock poisoned");
        set.latency_us.record(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
        if let Some(visited) = visited_nodes {
            set.visited_nodes.record(visited);
        }
    }

    /// Queries served so far (executed + cached).
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Queries answered from the result cache so far.
    pub fn cached_queries_served(&self) -> u64 {
        self.cached_queries.load(Ordering::Relaxed)
    }

    /// Renders the sink as `key=value` lines (the body of the `stats`
    /// protocol command, minus the cache counters that the server
    /// appends from its caches).
    pub fn render(&self, out: &mut String) {
        use std::fmt::Write;
        let set = self.histograms.lock().expect("metrics lock poisoned");
        let _ = writeln!(out, "uptime_us={}", self.uptime().as_micros());
        let _ = writeln!(out, "connections={}", self.connections.load(Ordering::Relaxed));
        let _ = writeln!(out, "requests={}", self.requests.load(Ordering::Relaxed));
        let _ = writeln!(out, "errors={}", self.errors.load(Ordering::Relaxed));
        let _ = writeln!(out, "queries={}", self.queries.load(Ordering::Relaxed));
        let _ = writeln!(out, "queries_cached={}", self.cached_queries.load(Ordering::Relaxed));
        let _ = writeln!(out, "queries_executed={}", set.latency_us.count());
        let _ = writeln!(out, "latency_us_mean={}", set.latency_us.mean());
        let _ = writeln!(out, "latency_us_max={}", set.latency_us.max());
        let _ = writeln!(out, "latency_us_histogram={}", set.latency_us.render());
        let _ = writeln!(out, "visited_nodes_mean={}", set.visited_nodes.mean());
        let _ = writeln!(out, "visited_nodes_max={}", set.visited_nodes.max());
        let _ = writeln!(out, "visited_nodes_histogram={}", set.visited_nodes.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1000);
        let rendered = h.render();
        // 0 and 1 share bucket 0; 2 and 3 bucket 1; 4 and 7 bucket 2;
        // 8 bucket 3; 1000 lands in 512-1023.
        assert_eq!(rendered, "0-1:2 2-3:2 4-7:2 8-15:1 512-1023:1");
    }

    #[test]
    fn histogram_clamps_huge_samples() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.render().ends_with(":1"));
    }

    #[test]
    fn empty_histogram_renders_dash() {
        assert_eq!(Histogram::new().render(), "-");
        assert_eq!(Histogram::new().mean(), 0);
    }

    #[test]
    fn metrics_render_contains_counters() {
        let metrics = Metrics::new();
        metrics.record_connection();
        metrics.record_request();
        metrics.record_executed_query(Duration::from_micros(150), Some(42));
        metrics.record_cached_query();
        assert_eq!(metrics.queries_served(), 2);
        assert_eq!(metrics.cached_queries_served(), 1);
        let mut out = String::new();
        metrics.render(&mut out);
        assert!(out.contains("connections=1\n"));
        assert!(out.contains("requests=1\n"));
        assert!(out.contains("queries=2\n"));
        assert!(out.contains("queries_cached=1\n"));
        assert!(out.contains("queries_executed=1\n"));
        assert!(out.contains("latency_us_histogram=128-255:1\n"));
        assert!(out.contains("visited_nodes_histogram=32-63:1\n"));
    }
}
