//! A blocking client for the `sxsi serve` protocol — used by the
//! `sxsi client` CLI subcommand and the integration tests, and usable
//! as a library by anything that wants to talk to a running daemon.
//!
//! Connecting performs the `hello` handshake immediately, so a
//! successfully constructed [`Client`] is known to speak the same
//! [`PROTOCOL_VERSION`] as the server.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

use super::protocol::{
    escape_query, read_frame, write_frame, ErrorCode, FrameError, Response, MAX_RESPONSE_FRAME,
    PROTOCOL_VERSION,
};
use super::OutputKind;

/// What can go wrong talking to a daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting to the socket failed.
    Connect(io::Error),
    /// A frame could not be read or written.
    Frame(FrameError),
    /// The server sent something outside the protocol (e.g. an
    /// unparsable response payload or a failed handshake).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

enum ClientConn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for ClientConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientConn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientConn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientConn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientConn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientConn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientConn::Unix(s) => s.flush(),
        }
    }
}

/// One connection to a running `sxsi serve` daemon, already past the
/// `hello` handshake.
///
/// Reads block indefinitely by default (queries may legitimately take a
/// while on a loaded server); the *server* enforces idle timeouts, not
/// the client.
pub struct Client {
    conn: ClientConn,
    server: String,
}

impl Client {
    /// Connects over TCP (e.g. `127.0.0.1:7878`) and shakes hands.
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Connect)?;
        // One query is one small frame each way; Nagle would trade
        // ~40ms of delayed-ACK latency for nothing.
        stream.set_nodelay(true).map_err(ClientError::Connect)?;
        Self::handshake(ClientConn::Tcp(stream))
    }

    /// Connects over a Unix-domain socket and shakes hands.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path).map_err(ClientError::Connect)?;
        Self::handshake(ClientConn::Unix(stream))
    }

    fn handshake(mut conn: ClientConn) -> Result<Client, ClientError> {
        let hello = format!("hello {PROTOCOL_VERSION}");
        write_frame(&mut conn, hello.as_bytes()).map_err(FrameError::Io)?;
        match Self::read_response_on(&mut conn)? {
            Response::Ok { detail, .. } => Ok(Client { conn, server: detail }),
            Response::Err { code, message } => {
                Err(ClientError::Protocol(format!("handshake rejected ({code}): {message}")))
            }
        }
    }

    /// The server's handshake banner (e.g. `sxsi-serve 1 indexes=1`).
    pub fn server_banner(&self) -> &str {
        &self.server
    }

    /// Sends one raw request payload and reads the response frame.
    pub fn request(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, payload).map_err(FrameError::Io)?;
        Self::read_response_on(&mut self.conn)
    }

    fn read_response_on(conn: &mut ClientConn) -> Result<Response, ClientError> {
        let payload = read_frame(conn, MAX_RESPONSE_FRAME)?;
        Response::parse(&payload)
            .ok_or_else(|| ClientError::Protocol("unparsable response payload".into()))
    }

    /// Runs a batch of XPath expressions, returning the server's
    /// response.  On success the body is byte-identical to what
    /// `sxsi query`/`sxsi exists` would print for the same options.
    pub fn query(
        &mut self,
        index: Option<&str>,
        output: OutputKind,
        limit: Option<u64>,
        offset: u64,
        xpaths: &[&str],
    ) -> Result<Response, ClientError> {
        let mut payload = String::from("query");
        if let Some(index) = index {
            payload.push_str(" index=");
            payload.push_str(index);
        }
        payload.push_str(" output=");
        payload.push_str(output.as_str());
        payload.push_str(" limit=");
        match limit {
            Some(n) => payload.push_str(&n.to_string()),
            None => payload.push_str("none"),
        }
        payload.push_str(" offset=");
        payload.push_str(&offset.to_string());
        for xpath in xpaths {
            payload.push('\n');
            payload.push_str(&escape_query(xpath));
        }
        self.request(payload.as_bytes())
    }

    /// Runs a ranked keyword search, returning the server's response.
    /// On success the body is byte-identical to what `sxsi search`
    /// would print for the same index and options.
    pub fn search(
        &mut self,
        index: Option<&str>,
        mode: &str,
        limit: Option<u64>,
        terms: &[&str],
    ) -> Result<Response, ClientError> {
        let mut payload = String::from("search");
        if let Some(index) = index {
            payload.push_str(" index=");
            payload.push_str(index);
        }
        payload.push_str(" mode=");
        payload.push_str(mode);
        payload.push_str(" limit=");
        match limit {
            Some(n) => payload.push_str(&n.to_string()),
            None => payload.push_str("none"),
        }
        for term in terms {
            payload.push('\n');
            payload.push_str(&escape_query(term));
        }
        self.request(payload.as_bytes())
    }

    /// Fetches the `stats` body (counters, histograms, cache state).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.expect_ok_body(b"stats")
    }

    /// Fetches the `info` body (server and per-index descriptions).
    pub fn info(&mut self) -> Result<String, ClientError> {
        self.expect_ok_body(b"info")
    }

    /// Round-trips a `ping`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(b"ping")? {
            Response::Ok { .. } => Ok(()),
            Response::Err { code, message } => {
                Err(ClientError::Protocol(format!("ping failed ({code}): {message}")))
            }
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(b"shutdown")? {
            Response::Ok { .. } => Ok(()),
            Response::Err { code, message } => {
                Err(ClientError::Protocol(format!("shutdown failed ({code}): {message}")))
            }
        }
    }

    fn expect_ok_body(&mut self, command: &[u8]) -> Result<String, ClientError> {
        match self.request(command)? {
            Response::Ok { body, .. } => Ok(body),
            Response::Err { code, message } => Err(ClientError::Protocol(format!(
                "{} failed ({code}): {message}",
                String::from_utf8_lossy(command)
            ))),
        }
    }
}

/// Maps a server error frame onto the CLI's exit-code taxonomy
/// (`docs/guide.md#exit-codes`): `unsupported-query` → 3, everything
/// else → 1.  (Exit 4, exists-without-match, is not an error frame: the
/// client derives it from the `all_found=` detail of an `exists`
/// response.)
pub fn exit_code_for(code: ErrorCode) -> i32 {
    match code {
        ErrorCode::UnsupportedQuery => 3,
        _ => 1,
    }
}
