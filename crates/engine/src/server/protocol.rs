//! The `sxsi serve` wire protocol: length-prefixed frames carrying
//! UTF-8 command/response payloads.
//!
//! The byte-level layout is documented for external clients in
//! `docs/protocol.md`; this module is the single in-tree implementation
//! (server and client share it, so the two cannot drift).
//!
//! # Frames
//!
//! Every message is one *frame*: a 4-byte little-endian payload length
//! followed by exactly that many payload bytes.  Requests are capped at
//! [`MAX_REQUEST_FRAME`]; a larger announced length is rejected with a
//! structured error frame and the connection is closed (the stream
//! cannot be re-synchronized after an un-read body).  Responses are
//! capped at the looser [`MAX_RESPONSE_FRAME`] because serialized
//! subtrees can be large.
//!
//! # Payloads
//!
//! A request payload is UTF-8 text: a command line, then command-
//! specific extra lines.  Because XPath strings may themselves contain
//! newlines (the paper's M11 does), query expressions travel
//! percent-encoded ([`escape_query`]/[`unescape_query`]).
//!
//! A response payload is either `ok[ <detail>]\n<body>` or a single
//! `error code=<code> <message>` line — see [`Response`].

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version exchanged in the `hello` command.  Bumped on any
/// incompatible frame or payload change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on request payloads (1 MiB — queries are small).
pub const MAX_REQUEST_FRAME: u32 = 1 << 20;

/// Upper bound on response payloads (256 MiB — serialized subtrees).
pub const MAX_RESPONSE_FRAME: u32 = 1 << 28;

/// What went wrong while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream at a frame boundary (no bytes of a new frame
    /// had been read) — the peer is done, not broken.
    Closed,
    /// End of stream in the middle of a frame (inside the length prefix
    /// or the payload): `got` of `expected` payload-plus-prefix bytes
    /// arrived.
    Truncated {
        /// Bytes that did arrive.
        got: usize,
        /// Bytes the frame announced.
        expected: usize,
    },
    /// The announced payload length exceeds the cap.
    Oversized {
        /// The announced length.
        len: u64,
        /// The applicable cap.
        max: u64,
    },
    /// The read timed out (the socket's read timeout elapsed).
    TimedOut,
    /// Any other I/O failure.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { got, expected } => {
                write!(f, "truncated frame: got {got} of {expected} bytes")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: announced {len} bytes, cap is {max}")
            }
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads exactly `buf.len()` bytes, reporting how many arrived before
/// EOF/timeout so the caller can distinguish clean close from truncation.
fn read_exact_counting(r: &mut impl Read, buf: &mut [u8]) -> Result<(), (usize, FrameError)> {
    let mut filled = 0;
    while filled < buf.len() {
        // lint:allow(index: filled < buf.len() is the loop condition)
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err((filled, FrameError::Closed)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err((filled, FrameError::TimedOut)),
            Err(e) => return Err((filled, FrameError::Io(e))),
        }
    }
    Ok(())
}

/// Reads one frame (length prefix + payload), enforcing `max_payload`.
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    if let Err((got, err)) = read_exact_counting(r, &mut prefix) {
        return Err(match err {
            // EOF before any byte is a clean close; EOF inside the
            // prefix is a truncated frame.
            FrameError::Closed if got == 0 => FrameError::Closed,
            FrameError::Closed => FrameError::Truncated { got, expected: 4 },
            other => other,
        });
    }
    let len = u32::from_le_bytes(prefix);
    if len > max_payload {
        return Err(FrameError::Oversized { len: u64::from(len), max: u64::from(max_payload) });
    }
    let mut payload = vec![0u8; len as usize];
    if let Err((got, err)) = read_exact_counting(r, &mut payload) {
        return Err(match err {
            FrameError::Closed => FrameError::Truncated { got: 4 + got, expected: 4 + len as usize },
            other => other,
        });
    }
    Ok(payload)
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload over 4 GiB"))?;
    // One write call for prefix + payload: splitting them into two TCP
    // segments makes Nagle's algorithm hold the payload until the
    // prefix is ACKed, adding ~40ms of delayed-ACK latency per frame.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Percent-encodes a query string for single-line transport: `%`, CR,
/// LF and NUL become `%25`, `%0D`, `%0A`, `%00`.  Everything else is
/// passed through, so encoded queries stay readable in traces.
pub fn escape_query(query: &str) -> String {
    let mut out = String::with_capacity(query.len());
    for c in query.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\r' => out.push_str("%0D"),
            '\n' => out.push_str("%0A"),
            '\0' => out.push_str("%00"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_query`].  Returns `None` on a malformed escape.
pub fn unescape_query(encoded: &str) -> Option<String> {
    let mut out = String::with_capacity(encoded.len());
    let mut chars = encoded.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next()?;
        let lo = chars.next()?;
        let byte = (hi.to_digit(16)? * 16 + lo.to_digit(16)?) as u8;
        match byte {
            b'%' => out.push('%'),
            b'\r' => out.push('\r'),
            b'\n' => out.push('\n'),
            0 => out.push('\0'),
            other => out.push(other as char),
        }
    }
    Some(out)
}

/// Machine-readable error categories carried in `error code=…` frames.
///
/// The query-shape codes deliberately mirror the CLI's exit-code
/// taxonomy (`docs/guide.md#exit-codes`): `parse-error` is the daemon
/// analog of exit 1 on a bad query string, `unsupported-query` of
/// exit 3.  The `sxsi client` subcommand maps them back to those exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame payload was not valid UTF-8 or was empty.
    BadFrame,
    /// EOF arrived in the middle of a frame.
    TruncatedFrame,
    /// The announced frame length exceeds the request cap.
    OversizedFrame,
    /// The first command was not a `hello`, or named an incompatible
    /// protocol version.
    BadVersion,
    /// The command name is not known.
    UnknownCommand,
    /// A command argument is missing or malformed.
    BadArgument,
    /// The requested index id is not loaded.
    UnknownIndex,
    /// A query string failed to parse.
    ParseError,
    /// A query parsed but compiles to a shape the engine does not
    /// support (the daemon analog of CLI exit 3).
    UnsupportedQuery,
    /// The server hit an internal inconsistency while assembling a
    /// response (a server bug, not a client error).
    Internal,
    /// The connection idled past the server's read timeout.
    Timeout,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire token for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::TruncatedFrame => "truncated-frame",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::UnknownCommand => "unknown-command",
            ErrorCode::BadArgument => "bad-argument",
            ErrorCode::UnknownIndex => "unknown-index",
            ErrorCode::ParseError => "parse-error",
            ErrorCode::UnsupportedQuery => "unsupported-query",
            ErrorCode::Internal => "internal",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }

    /// Parses a wire token.
    pub fn parse(token: &str) -> Option<Self> {
        Some(match token {
            "bad-frame" => ErrorCode::BadFrame,
            "truncated-frame" => ErrorCode::TruncatedFrame,
            "oversized-frame" => ErrorCode::OversizedFrame,
            "bad-version" => ErrorCode::BadVersion,
            "unknown-command" => ErrorCode::UnknownCommand,
            "bad-argument" => ErrorCode::BadArgument,
            "unknown-index" => ErrorCode::UnknownIndex,
            "parse-error" => ErrorCode::ParseError,
            "unsupported-query" => ErrorCode::UnsupportedQuery,
            "internal" => ErrorCode::Internal,
            "timeout" => ErrorCode::Timeout,
            "shutting-down" => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `ok[ <detail>]\n<body>`: the command succeeded.
    Ok {
        /// The rest of the `ok` line (may be empty).
        detail: String,
        /// Everything after the first line, verbatim.
        body: String,
    },
    /// `error code=<code> <message>`: a structured failure.
    Err {
        /// The machine-readable category.
        code: ErrorCode,
        /// The human-readable message (single line).
        message: String,
    },
}

impl Response {
    /// Renders a success payload.
    pub fn render_ok(detail: &str, body: &str) -> Vec<u8> {
        let mut out = String::with_capacity(4 + detail.len() + body.len());
        out.push_str("ok");
        if !detail.is_empty() {
            out.push(' ');
            out.push_str(detail);
        }
        out.push('\n');
        out.push_str(body);
        out.into_bytes()
    }

    /// Renders an error payload.  `message` is flattened to one line.
    pub fn render_error(code: ErrorCode, message: &str) -> Vec<u8> {
        let flat: String =
            message.chars().map(|c| if c == '\n' || c == '\r' { ' ' } else { c }).collect();
        format!("error code={code} {flat}").into_bytes()
    }

    /// Parses a response payload.  Returns `None` when the payload is
    /// not UTF-8 or matches neither shape.
    pub fn parse(payload: &[u8]) -> Option<Response> {
        let text = std::str::from_utf8(payload).ok()?;
        if let Some(rest) = text.strip_prefix("ok") {
            let (first_line, body) = match rest.split_once('\n') {
                Some((head, body)) => (head, body),
                None => (rest, ""),
            };
            let detail = first_line.strip_prefix(' ').unwrap_or(first_line);
            return Some(Response::Ok { detail: detail.to_string(), body: body.to_string() });
        }
        let rest = text.strip_prefix("error ")?;
        let rest = rest.strip_prefix("code=")?;
        let (code_token, message) = rest.split_once(' ').unwrap_or((rest, ""));
        Some(Response::Err {
            code: ErrorCode::parse(code_token)?,
            message: message.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello 1").unwrap();
        assert_eq!(buf.len(), 4 + 7);
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, MAX_REQUEST_FRAME).unwrap(), b"hello 1");
        assert!(matches!(read_frame(&mut cursor, MAX_REQUEST_FRAME), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_announced_length_is_rejected_before_reading_the_body() {
        let mut frame = (MAX_REQUEST_FRAME + 1).to_le_bytes().to_vec();
        frame.extend_from_slice(b"xx");
        let mut cursor = io::Cursor::new(frame);
        match read_frame(&mut cursor, MAX_REQUEST_FRAME) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u64::from(MAX_REQUEST_FRAME) + 1);
                assert_eq!(max, u64::from(MAX_REQUEST_FRAME));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn every_byte_truncation_is_detected() {
        let mut full = Vec::new();
        write_frame(&mut full, b"stats").unwrap();
        for cut in 1..full.len() {
            let mut cursor = io::Cursor::new(full[..cut].to_vec());
            match read_frame(&mut cursor, MAX_REQUEST_FRAME) {
                Err(FrameError::Truncated { got, expected }) => {
                    assert_eq!(got, cut);
                    // Inside the prefix the reader cannot know the
                    // payload length yet, so `expected` is the prefix.
                    let known = if cut < 4 { 4 } else { full.len() };
                    assert_eq!(expected, known);
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn query_escaping_roundtrips() {
        let tricky = "//*/*[ contains( . , \"1999\n11\n26\") ]";
        let encoded = escape_query(tricky);
        assert!(!encoded.contains('\n'));
        assert_eq!(unescape_query(&encoded).unwrap(), tricky);
        assert_eq!(unescape_query(&escape_query("100%")).unwrap(), "100%");
        assert_eq!(unescape_query("%zz"), None);
        assert_eq!(unescape_query("%0"), None);
    }

    #[test]
    fn response_roundtrip() {
        let ok = Response::render_ok("pong", "body line\n");
        assert_eq!(
            Response::parse(&ok).unwrap(),
            Response::Ok { detail: "pong".into(), body: "body line\n".into() }
        );
        let ok_plain = Response::render_ok("", "");
        assert_eq!(
            Response::parse(&ok_plain).unwrap(),
            Response::Ok { detail: String::new(), body: String::new() }
        );
        let err = Response::render_error(ErrorCode::UnknownIndex, "no index 'x'\nloaded: y");
        match Response::parse(&err).unwrap() {
            Response::Err { code, message } => {
                assert_eq!(code, ErrorCode::UnknownIndex);
                assert_eq!(message, "no index 'x' loaded: y");
            }
            other => panic!("expected Err, got {other:?}"),
        }
        assert_eq!(Response::parse(b"\xff\xfe"), None);
        assert_eq!(Response::parse(b"error code=not-a-code x"), None);
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::TruncatedFrame,
            ErrorCode::OversizedFrame,
            ErrorCode::BadVersion,
            ErrorCode::UnknownCommand,
            ErrorCode::BadArgument,
            ErrorCode::UnknownIndex,
            ErrorCode::ParseError,
            ErrorCode::UnsupportedQuery,
            ErrorCode::Timeout,
            ErrorCode::ShuttingDown,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
    }
}
