//! A small, dependency-free LRU cache with hit/miss/eviction counters.
//!
//! The daemon keeps two of these (compiled-plan cache and result cache;
//! see [`super::Server`]).  Capacities are small — the fxi-style default
//! is 128 entries — so the implementation favors simplicity and
//! auditability over asymptotics: entries live in a `HashMap` stamped
//! with a monotonic use counter, and eviction scans for the least
//! recently used entry (`O(capacity)` on insert-when-full, `O(1)`
//! otherwise).  True LRU semantics: both hits and inserts refresh the
//! stamp.
//!
//! The cache is not internally synchronized; the server wraps it in a
//! `Mutex`.  Counters are part of the cache (not the metrics sink) so a
//! cache and its statistics can never drift apart.

use std::collections::HashMap;
use std::hash::Hash;

/// A least-recently-used cache of bounded capacity, counting hits,
/// misses and evictions.
///
/// ```
/// use sxsi_engine::server::cache::LruCache;
///
/// let mut cache = LruCache::new(2);
/// cache.insert("a", 1);
/// cache.insert("b", 2);
/// assert_eq!(cache.get(&"a"), Some(&1)); // refreshes "a"
/// cache.insert("c", 3);                  // evicts "b", the LRU entry
/// assert_eq!(cache.get(&"b"), None);
/// assert_eq!(cache.counters().evictions, 1);
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    entries: HashMap<K, Entry<V>>,
    counters: CacheCounters,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

/// Monotonic counters describing a cache's lifetime behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to make room for an insert.
    pub evictions: u64,
}

impl CacheCounters {
    /// Hit fraction in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<K: Hash + Eq, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.  A zero
    /// capacity disables the cache: every lookup misses, inserts are
    /// dropped (counted as neither hit nor eviction).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: HashMap::with_capacity(capacity.min(1024)),
            counters: CacheCounters::default(),
        }
    }

    /// The maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The hit/miss/eviction counters so far.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Looks `key` up, refreshing its recency and counting a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.counters.hits += 1;
                Some(&entry.value)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry when the cache is full and `key` is new.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.value = value;
            entry.last_used = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            // O(capacity) scan; capacities are on the order of hundreds.
            if let Some(lru) = self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.counters.evictions += 1;
            }
        }
        self.entries.insert(key, Entry { value, last_used: self.tick });
    }

    /// Removes every entry (counters are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss_accounting() {
        let mut cache: LruCache<&str, u32> = LruCache::new(4);
        assert_eq!(cache.get(&"x"), None);
        cache.insert("x", 7);
        assert_eq!(cache.get(&"x"), Some(&7));
        let counters = cache.counters();
        assert_eq!((counters.hits, counters.misses, counters.evictions), (1, 1, 0));
        assert!((counters.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(3);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("c", 3);
        assert_eq!(cache.get(&"a"), Some(&1)); // refresh a: b is now LRU
        cache.insert("d", 4);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
        assert_eq!(cache.get(&"d"), Some(&4));
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn replacing_does_not_evict() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(cache.get(&"a"), Some(&10));
        assert_eq!(cache.get(&"b"), Some(&2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert("a", 1);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&"a"), None);
        assert_eq!(cache.counters().misses, 1);
        assert_eq!(cache.counters().evictions, 0);
    }

    #[test]
    fn insert_refreshes_recency() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 3); // refresh a: b is LRU
        cache.insert("c", 4);
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&3));
    }
}
