//! Sharded query execution over a multi-document [`Collection`].
//!
//! A [`CollectionExecutor`] fans one XPath query across every document of
//! a collection on the [`BatchExecutor`] thread pool: each shard lazily
//! loads its segment, prepares the query against *its own* index (tag
//! identifiers are per-document, so a prepared statement never crosses
//! segments), and runs with the [`QueryOptions::per_shard`] pushdown —
//! existence probes stop at the first match per document, windowed
//! materializations stop at the global window end per document.  The
//! per-document document-ordered prefixes are then merged doc-major
//! ([`sxsi_collection::merge_window`]) into one DocId-qualified window
//! with an exact truncation flag, and the per-shard [`EvalStats`] are
//! summed into one aggregate report.
//!
//! [`CollectionExecutor::run_sequential`] is the one-thread reference
//! path with stronger early termination: it walks documents in DocId
//! order, shrinks the window cap by what earlier documents already
//! produced, and downgrades to existence probes once the window is full —
//! the differential suite pins it result-identical to the parallel path.

use std::fmt;

use sxsi::{EvalStats, NodeId, QueryError, QueryMode, QueryOptions, ResultSet};
use sxsi_collection::{
    merge_window, Collection, CollectionError, DocId, DocNode, DocNodeCursor, DocNodes,
};

use crate::server::OutputKind;
use crate::BatchExecutor;

/// A collection query that could not run: either a segment failed to
/// load, or the query failed to prepare against one document's index.
#[derive(Debug)]
pub enum CollectionQueryError {
    /// A segment could not be loaded or validated.
    Load(CollectionError),
    /// The query failed to parse or compile against one document.
    Prepare {
        /// The document the preparation failed on.
        doc: DocId,
        /// The document's name from the manifest.
        name: String,
        /// The underlying parse/compile error.
        error: QueryError,
    },
}

impl fmt::Display for CollectionQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectionQueryError::Load(e) => write!(f, "{e}"),
            CollectionQueryError::Prepare { doc, name, error } => {
                write!(f, "prepare against doc {doc} ({name}): {error}")
            }
        }
    }
}

impl std::error::Error for CollectionQueryError {}

impl CollectionQueryError {
    /// The underlying [`QueryError`] when the failure was a prepare
    /// failure (the CLI maps compile errors to its dedicated exit code).
    pub fn query_error(&self) -> Option<&QueryError> {
        match self {
            CollectionQueryError::Prepare { error, .. } => Some(error),
            CollectionQueryError::Load(_) => None,
        }
    }
}

/// One document's contribution to a collection query: the shard-local
/// [`ResultSet`] (strategy, stats, truncation flag included), tagged with
/// its DocId.
#[derive(Debug, Clone)]
pub struct DocRun {
    /// The document this run evaluated.
    pub doc: DocId,
    /// The shard-local result, produced under the per-shard pushdown
    /// options (an existence probe, for sequential runs past a full
    /// window).
    pub result: ResultSet,
}

/// The merged outcome of one collection query: global payload plus the
/// per-document runs it was assembled from.
#[derive(Debug, Clone)]
pub struct CollectionResult {
    mode: QueryMode,
    runs: Vec<DocRun>,
    nodes: Vec<DocNode>,
    exists: bool,
    count: u64,
    truncated: bool,
    stats: Option<EvalStats>,
}

impl CollectionResult {
    /// Whether at least one node matched in any document.
    pub fn exists(&self) -> bool {
        self.exists
    }

    /// The (globally windowed) result count.  In `Exists` mode this is
    /// `0` or `1`, mirroring [`ResultSet::count`].
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The merged, windowed DocId-qualified nodes (`Nodes` mode; empty
    /// otherwise), doc-major and in document order within each document.
    pub fn nodes(&self) -> &[DocNode] {
        &self.nodes
    }

    /// A streaming cursor over the merged window.
    pub fn cursor(&self) -> DocNodeCursor<'_> {
        DocNodeCursor::new(&self.nodes)
    }

    /// Whether matching nodes exist beyond the returned window (or beyond
    /// the clamped count) — exact, even though every shard only produced
    /// a window-sized prefix.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The per-shard statistics summed into one report, when the options
    /// asked for stats.  Under early termination this reflects only the
    /// nodes the shards actually visited.
    pub fn stats(&self) -> Option<EvalStats> {
        self.stats
    }

    /// The mode the query ran in.
    pub fn mode(&self) -> QueryMode {
        self.mode
    }

    /// The per-document runs this result was merged from, in DocId order.
    /// Sequential runs may hold fewer entries than the collection has
    /// documents (early termination skips the tail) and may downgrade
    /// trailing entries to existence probes.
    pub fn runs(&self) -> &[DocRun] {
        &self.runs
    }
}

/// Fans one query across every document of a [`Collection`] on the
/// [`BatchExecutor`] thread pool and merges the per-document results.
///
/// ```
/// use sxsi::{QueryOptions, SxsiIndex};
/// use sxsi_collection::Collection;
/// use sxsi_engine::collection::CollectionExecutor;
///
/// let dir = std::env::temp_dir().join(format!("sxsi-doctest-cx-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let collection = Collection::build(
///     dir.join("pair.sxsic"),
///     vec![
///         ("one".into(), SxsiIndex::build_from_xml(b"<a><b>x</b></a>").unwrap()),
///         ("two".into(), SxsiIndex::build_from_xml(b"<a><b/><b/></a>").unwrap()),
///     ],
/// )
/// .unwrap();
///
/// let executor = CollectionExecutor::new(2);
/// let result = executor.run(&collection, "//b", &QueryOptions::count()).unwrap();
/// assert_eq!(result.count(), 3);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CollectionExecutor {
    executor: BatchExecutor,
}

impl CollectionExecutor {
    /// An executor with `threads` shard workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        Self { executor: BatchExecutor::new(threads) }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self { executor: BatchExecutor::with_available_parallelism() }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Runs `xpath` across every document in parallel and merges the
    /// shard results.  Results are identical at every thread count and
    /// identical to [`CollectionExecutor::run_sequential`].
    pub fn run(
        &self,
        collection: &Collection,
        xpath: &str,
        options: &QueryOptions,
    ) -> Result<CollectionResult, CollectionQueryError> {
        let shard_options = options.per_shard();
        let outcomes = self.executor.run_jobs(collection.num_docs(), |doc| {
            let result = run_shard(collection, doc, xpath, &shard_options)?;
            Ok::<DocRun, CollectionQueryError>(DocRun { doc, result })
        });
        let mut runs = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            runs.push(outcome?);
        }
        Ok(finish(options, runs, None))
    }

    /// Runs `xpath` across the documents in DocId order on the calling
    /// thread, with cross-document early termination: an existence query
    /// stops at the first matching document, a windowed materialization
    /// shrinks the per-document cap by what earlier documents produced
    /// and downgrades to existence probes once the window is full.
    pub fn run_sequential(
        collection: &Collection,
        xpath: &str,
        options: &QueryOptions,
    ) -> Result<CollectionResult, CollectionQueryError> {
        let shard_options = options.per_shard();
        let mut runs = Vec::new();
        match options.mode {
            QueryMode::Exists => {
                for doc in 0..collection.num_docs() {
                    let result = run_shard(collection, doc, xpath, &shard_options)?;
                    let found = result.exists();
                    runs.push(DocRun { doc, result });
                    if found {
                        break;
                    }
                }
                Ok(finish(options, runs, None))
            }
            QueryMode::Count => {
                for doc in 0..collection.num_docs() {
                    let result = run_shard(collection, doc, xpath, &shard_options)?;
                    runs.push(DocRun { doc, result });
                }
                Ok(finish(options, runs, None))
            }
            QueryMode::Nodes => {
                // The global window is [offset, end); `produced` counts the
                // concatenated stream positions already covered by runs.
                let end = options.limit.map(|l| l.saturating_add(options.offset));
                let mut produced = 0u64;
                let mut window_overflows = false;
                for doc in 0..collection.num_docs() {
                    match end {
                        Some(end) if produced >= end => {
                            // Window already full: only the truncation flag
                            // is open — probe the remaining documents for
                            // existence and stop at the first match.
                            let probe = QueryOptions {
                                mode: QueryMode::Exists,
                                limit: None,
                                offset: 0,
                                collect_stats: options.collect_stats,
                            };
                            let result = run_shard(collection, doc, xpath, &probe)?;
                            let found = result.exists();
                            runs.push(DocRun { doc, result });
                            if found {
                                window_overflows = true;
                                break;
                            }
                        }
                        _ => {
                            // Cap this document at what the window still
                            // needs: earlier documents own the first
                            // `produced` positions of the merged stream.
                            let doc_options = QueryOptions {
                                limit: end.map(|e| e - produced),
                                ..shard_options
                            };
                            let result = run_shard(collection, doc, xpath, &doc_options)?;
                            produced += result.nodes().map_or(0, |n| n.len() as u64);
                            let truncated = result.truncated();
                            runs.push(DocRun { doc, result });
                            if truncated {
                                // The cap cut this document, so the merged
                                // stream provably extends past the window.
                                window_overflows = true;
                                break;
                            }
                        }
                    }
                }
                Ok(finish(options, runs, Some(window_overflows)))
            }
        }
    }
}

/// Loads one shard's segment and runs the query on it.
fn run_shard(
    collection: &Collection,
    doc: DocId,
    xpath: &str,
    options: &QueryOptions,
) -> Result<ResultSet, CollectionQueryError> {
    let index = collection.segment(doc).map_err(CollectionQueryError::Load)?;
    let prepared = index.prepare(xpath).map_err(|error| CollectionQueryError::Prepare {
        doc,
        name: collection.doc_name(doc).to_string(),
        error,
    })?;
    Ok(prepared.run(&index, options))
}

/// Merges per-shard runs into the global result under the original
/// (pre-pushdown) options.  `known_overflow` short-circuits the merge's
/// truncation reasoning for the sequential path, whose adaptive caps
/// don't satisfy the uniform-prefix contract [`merge_window`] asserts.
fn finish(options: &QueryOptions, runs: Vec<DocRun>, known_overflow: Option<bool>) -> CollectionResult {
    let stats = options.collect_stats.then(|| {
        let mut total = EvalStats::default();
        for run in &runs {
            if let Some(s) = run.result.stats() {
                total.accumulate(&s);
            }
        }
        total
    });
    let (nodes, count, truncated) = match options.mode {
        QueryMode::Exists => {
            let found = runs.iter().any(|r| r.result.exists());
            (Vec::new(), u64::from(found), false)
        }
        QueryMode::Count => {
            let raw: u64 = runs.iter().map(|r| r.result.count()).sum();
            let windowed =
                raw.saturating_sub(options.offset).min(options.limit.unwrap_or(u64::MAX));
            let truncated =
                options.limit.is_some_and(|l| raw.saturating_sub(options.offset) > l);
            (Vec::new(), windowed, truncated)
        }
        QueryMode::Nodes => match known_overflow {
            None => {
                // Parallel path: every shard produced a uniform prefix up
                // to the global window end, so the doc-major merge windows
                // exactly.
                let parts: Vec<DocNodes> = runs
                    .iter()
                    .map(|r| DocNodes {
                        doc: r.doc,
                        nodes: r.result.nodes().map(<[NodeId]>::to_vec).unwrap_or_default(),
                        truncated: r.result.truncated(),
                    })
                    .collect();
                let (nodes, truncated) = merge_window(parts, options.offset, options.limit);
                let count = nodes.len() as u64;
                (nodes, count, truncated)
            }
            Some(overflow) => {
                // Sequential path: runs already form the leading prefix of
                // the concatenated stream (adaptive caps never cut inside
                // the window), so the window is a plain slice and the
                // truncation flag was decided during the walk.
                let mut nodes = Vec::new();
                let mut pos = 0u64;
                let end = options.limit.map(|l| l.saturating_add(options.offset));
                'collect: for run in &runs {
                    for &node in run.result.nodes().unwrap_or(&[]) {
                        if let Some(end) = end {
                            if pos >= end {
                                break 'collect;
                            }
                        }
                        if pos >= options.offset {
                            nodes.push(DocNode { doc: run.doc, node });
                        }
                        pos += 1;
                    }
                }
                let count = nodes.len() as u64;
                (nodes, count, overflow)
            }
        },
    };
    // Mirror `ResultSet::exists` semantics per mode: for `Count` it is
    // "windowed count > 0", for `Nodes` "the merged window is non-empty".
    let exists = match options.mode {
        QueryMode::Exists => count > 0,
        QueryMode::Count => count > 0,
        QueryMode::Nodes => !nodes.is_empty(),
    };
    CollectionResult { mode: options.mode, runs, nodes, exists, count, truncated, stats }
}

/// Renders a collection query result in the daemon's line protocol —
/// shared verbatim by `sxsi query --collection` and the `sxsi serve`
/// collection path, so client output can be byte-diffed against the CLI.
///
/// The formats mirror [`crate::server::render_batch_result`], with nodes
/// qualified as `doc-name:preorder`.
pub fn render_collection_result(
    collection: &Collection,
    id: &str,
    result: &CollectionResult,
    output: OutputKind,
    out: &mut String,
) {
    use fmt::Write;
    let more = if result.truncated() { " (more results exist)" } else { "" };
    match output {
        OutputKind::Exists => {
            let _ = writeln!(out, "{id}: {}", result.exists());
        }
        OutputKind::Count => {
            let _ = writeln!(out, "{id}: {}{more}", result.count());
        }
        OutputKind::Nodes => {
            let rendered: Vec<String> = result
                .nodes()
                .iter()
                .map(|dn| {
                    let preorder = segment_preorder(collection, dn);
                    format!("{}:{preorder}", collection.doc_name(dn.doc))
                })
                .collect();
            let _ = writeln!(
                out,
                "{id}: {} nodes [{}]{more}",
                result.nodes().len(),
                rendered.join(", ")
            );
        }
        OutputKind::Serialize => {
            let _ = writeln!(out, "{id}:{more}");
            for dn in result.nodes() {
                match collection.segment(dn.doc) {
                    Ok(index) => {
                        let _ = writeln!(out, "{}", index.get_subtree(dn.node));
                    }
                    Err(e) => {
                        let _ = writeln!(out, "<!-- doc {}: {e} -->", dn.doc);
                    }
                }
            }
        }
    }
}

/// The preorder number of a merged node within its own document, or the
/// raw NodeId when the segment cannot be loaded (display paths only —
/// the nodes were just produced from that segment, so this is theoretical).
fn segment_preorder(collection: &Collection, dn: &DocNode) -> usize {
    match collection.segment(dn.doc) {
        Ok(index) => index.tree().preorder(dn.node),
        Err(_) => dn.node,
    }
}

/// Sums aggregate per-document index statistics for `info`-style listings.
pub fn collection_stats_line(collection: &Collection) -> String {
    let manifest = collection.manifest();
    let nodes: u64 = manifest.docs.iter().map(|d| d.num_nodes).sum();
    format!(
        "docs={} nodes={nodes} elements={} texts={}",
        manifest.num_docs(),
        manifest.total_elements,
        manifest.total_texts
    )
}

#[allow(clippy::items_after_test_module)] // lint:allow-file exempt — test module is last
#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use sxsi::SxsiIndex;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sxsi-engine-collection-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn collection(dir: &std::path::Path) -> Collection {
        Collection::build(
            dir.join("col.sxsic"),
            vec![
                (
                    "alpha".into(),
                    SxsiIndex::build_from_xml(b"<a><b>x</b><b/><c><b/></c></a>").unwrap(),
                ),
                ("beta".into(), SxsiIndex::build_from_xml(b"<a><c>y</c></a>").unwrap()),
                ("gamma".into(), SxsiIndex::build_from_xml(b"<a><b/><b/></a>").unwrap()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_and_sequential_agree_across_modes_and_windows() {
        let dir = temp_dir("agree");
        let col = collection(&dir);
        let windows: &[(Option<u64>, u64)] =
            &[(None, 0), (Some(0), 0), (Some(1), 0), (Some(2), 1), (Some(10), 0), (None, 3)];
        for mode in [QueryMode::Exists, QueryMode::Count, QueryMode::Nodes] {
            for &(limit, offset) in windows {
                let options = QueryOptions { mode, limit, offset, collect_stats: true };
                let seq = CollectionExecutor::run_sequential(&col, "//b", &options).unwrap();
                for threads in [1, 2, 4] {
                    let par =
                        CollectionExecutor::new(threads).run(&col, "//b", &options).unwrap();
                    assert_eq!(par.exists(), seq.exists(), "{mode:?} {limit:?}+{offset}");
                    assert_eq!(par.count(), seq.count(), "{mode:?} {limit:?}+{offset}");
                    assert_eq!(par.nodes(), seq.nodes(), "{mode:?} {limit:?}+{offset}");
                    assert_eq!(par.truncated(), seq.truncated(), "{mode:?} {limit:?}+{offset}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merged_window_matches_concatenated_runs() {
        let dir = temp_dir("window");
        let col = collection(&dir);
        // Oracle: concatenation of the three per-doc full materializations.
        let mut full = Vec::new();
        for doc in 0..col.num_docs() {
            let index = col.segment(doc).unwrap();
            for node in index.materialize("//b").unwrap() {
                full.push(DocNode { doc, node });
            }
        }
        assert_eq!(full.len(), 5);
        let result = CollectionExecutor::new(2)
            .run(&col, "//b", &QueryOptions::nodes())
            .unwrap();
        assert_eq!(result.nodes(), &full[..]);
        assert!(!result.truncated());

        let windowed = CollectionExecutor::new(2)
            .run(&col, "//b", &QueryOptions::nodes().with_limit(2).with_offset(2))
            .unwrap();
        assert_eq!(windowed.nodes(), &full[2..4]);
        assert!(windowed.truncated());
        assert_eq!(windowed.cursor().count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequential_exists_skips_trailing_documents() {
        let dir = temp_dir("skip");
        collection(&dir);
        // Reopen cold: `build` returns a warm collection, but laziness is
        // the point of this test.
        let col = Collection::open(dir.join("col.sxsic")).unwrap();
        let result =
            CollectionExecutor::run_sequential(&col, "//b", &QueryOptions::exists()).unwrap();
        assert!(result.exists());
        assert_eq!(result.runs().len(), 1, "doc 0 matches, docs 1-2 must not run");
        assert!(col.segment_if_loaded(2).is_none(), "segment 2 must not even load");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aggregate_stats_sum_across_shards() {
        let dir = temp_dir("stats");
        let col = collection(&dir);
        let full = CollectionExecutor::new(2).run(&col, "//b", &QueryOptions::nodes()).unwrap();
        let total: u64 = full
            .runs()
            .iter()
            .map(|r| r.result.stats().unwrap().visited_nodes)
            .sum();
        assert_eq!(full.stats().unwrap().visited_nodes, total);
        assert_eq!(full.stats().unwrap().result_nodes, 5);
        let silent = CollectionExecutor::new(2)
            .run(&col, "//b", &QueryOptions::nodes().with_stats(false))
            .unwrap();
        assert!(silent.stats().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prepare_errors_identify_the_document() {
        let dir = temp_dir("prepare");
        let col = collection(&dir);
        let err = CollectionExecutor::new(2)
            .run(&col, "b", &QueryOptions::count())
            .unwrap_err();
        assert!(err.query_error().is_some());
        assert!(err.to_string().contains("doc 0"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rendering_is_docid_qualified() {
        let dir = temp_dir("render");
        let col = collection(&dir);
        let result = CollectionExecutor::new(2)
            .run(&col, "//b", &QueryOptions::nodes().with_limit(2))
            .unwrap();
        let mut out = String::new();
        render_collection_result(&col, "//b", &result, OutputKind::Nodes, &mut out);
        assert!(out.starts_with("//b: 2 nodes [alpha:"), "{out}");
        assert!(out.trim_end().ends_with("(more results exist)"), "{out}");

        let mut count_out = String::new();
        let count = CollectionExecutor::new(2).run(&col, "//b", &QueryOptions::count()).unwrap();
        render_collection_result(&col, "//b", &count, OutputKind::Count, &mut count_out);
        assert_eq!(count_out, "//b: 5\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
