//! Ranked keyword (`ft:`) search execution: single-index search,
//! sharded collection fan-out, and the one renderer shared by `sxsi
//! search` and the daemon's `search` command — so client output can be
//! byte-diffed against the CLI, scores included (they print with fixed
//! three-decimal precision for exactly that reason).
//!
//! Ranking comes from the `sxsi-search` crate (tf × ln(1 + N/df) summed
//! over the query terms); this module only adds document qualification
//! and the cross-document merge: per-document hit lists arrive sorted
//! by (score desc, node asc) and are merged with a stable sort on the
//! score alone, so ties stay in (DocId, preorder) order.

use std::fmt::Write as _;

use sxsi::{FtQuery, SxsiIndex};
use sxsi_collection::Collection;

use crate::collection::CollectionQueryError;
use crate::BatchExecutor;

/// One ranked search hit, qualified for display: the owning document's
/// name (for single indexes, whatever label the caller serves the index
/// under), the node's preorder number within its document, and the
/// tf·idf-style score.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedHit {
    /// Display name of the document the hit belongs to.
    pub doc: String,
    /// 1-based preorder number of the element within its document.
    pub preorder: usize,
    /// The hit's relevance score (higher is better).
    pub score: f64,
}

/// The outcome of one keyword search: the ranked hit window plus how
/// much of the full answer it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The ranked hits, best first, truncated to the requested limit.
    pub hits: Vec<RankedHit>,
    /// Whether hits beyond the returned window exist.
    pub truncated: bool,
    /// Total matching elements before the limit cut.
    pub total: usize,
}

/// The canonical display form of a keyword query, used as the result id
/// in rendered output: `ft:all("rust", "index")`.
pub fn query_display(query: &FtQuery) -> String {
    let terms: Vec<String> = query
        .tokens
        .iter()
        .map(|t| format!("\"{}\"", String::from_utf8_lossy(t)))
        .collect();
    format!("ft:{}({})", query.mode.as_str(), terms.join(", "))
}

/// Ranked search over one single index, its hits labelled `doc`.
pub fn search_index(
    index: &SxsiIndex,
    doc: &str,
    query: &FtQuery,
    limit: Option<usize>,
) -> SearchOutcome {
    let hits = index.search(query);
    let total = hits.len();
    let mut ranked: Vec<RankedHit> = hits
        .iter()
        .map(|h| RankedHit {
            doc: doc.to_string(),
            preorder: index.tree().preorder(h.node),
            score: h.score,
        })
        .collect();
    let truncated = limit.is_some_and(|l| ranked.len() > l);
    if let Some(l) = limit {
        ranked.truncate(l);
    }
    SearchOutcome { hits: ranked, truncated, total }
}

/// Ranked search across every document of a collection, one shard per
/// document on the batch pool, merged into one globally ranked list.
///
/// Results are identical at every thread count: each shard searches its
/// own segment (term statistics are per-document, like the per-document
/// prepared statements of the query path), and the merge is a stable
/// sort by score over the DocId-ordered concatenation.
pub fn search_collection(
    executor: &BatchExecutor,
    collection: &Collection,
    query: &FtQuery,
    limit: Option<usize>,
) -> Result<SearchOutcome, CollectionQueryError> {
    let outcomes = executor.run_jobs(collection.num_docs(), |doc| {
        let index = collection.segment(doc).map_err(CollectionQueryError::Load)?;
        let hits = index.search(query);
        let ranked: Vec<RankedHit> = hits
            .iter()
            .map(|h| RankedHit {
                doc: collection.doc_name(doc).to_string(),
                preorder: index.tree().preorder(h.node),
                score: h.score,
            })
            .collect();
        Ok::<Vec<RankedHit>, CollectionQueryError>(ranked)
    });
    let mut all = Vec::new();
    for outcome in outcomes {
        all.extend(outcome?);
    }
    // Shards returned in DocId order and each list is already
    // (score desc, preorder asc): a stable sort on the score alone keeps
    // ties in (DocId, preorder) order.
    all.sort_by(|a, b| b.score.total_cmp(&a.score));
    let total = all.len();
    let truncated = limit.is_some_and(|l| all.len() > l);
    if let Some(l) = limit {
        all.truncate(l);
    }
    Ok(SearchOutcome { hits: all, truncated, total })
}

/// Renders a search outcome in the line format of the query path
/// (`<id>: <n> hits [<doc:preorder score=s>, ...]`), shared verbatim by
/// the CLI and the daemon.
pub fn render_search_outcome(id: &str, outcome: &SearchOutcome, out: &mut String) {
    let more = if outcome.truncated { " (more results exist)" } else { "" };
    let rendered: Vec<String> = outcome
        .hits
        .iter()
        .map(|h| format!("{}:{} score={:.3}", h.doc, h.preorder, h.score))
        .collect();
    let _ = writeln!(out, "{id}: {} hits [{}]{more}", outcome.hits.len(), rendered.join(", "));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsi::FtMode;

    const DOC: &str = r#"<site>
  <item><name>rare drum</name><note>a rare loud drum indeed</note></item>
  <item><name>violin</name><note>classic string instrument</note></item>
</site>"#;

    fn index() -> SxsiIndex {
        SxsiIndex::build_from_xml(DOC.as_bytes()).unwrap()
    }

    #[test]
    fn single_index_search_ranks_and_truncates() {
        let idx = index();
        let query = FtQuery::new(FtMode::All, &["rare"]);
        let full = search_index(&idx, "doc", &query, None);
        assert!(full.hits.len() >= 2, "{full:?}");
        assert!(!full.truncated);
        assert_eq!(full.total, full.hits.len());
        for pair in full.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score, "{full:?}");
        }
        let capped = search_index(&idx, "doc", &query, Some(1));
        assert_eq!(capped.hits, full.hits[..1].to_vec());
        assert!(capped.truncated);
        assert_eq!(capped.total, full.total);
    }

    #[test]
    fn rendering_is_stable() {
        let idx = index();
        let query = FtQuery::new(FtMode::Phrase, &["rare loud drum"]);
        let outcome = search_index(&idx, "doc", &query, None);
        let mut out = String::new();
        render_search_outcome(&query_display(&query), &outcome, &mut out);
        assert!(out.starts_with("ft:phrase(\"rare\", \"loud\", \"drum\"): 1 hits [doc:"), "{out}");
        assert!(out.contains(" score="), "{out}");
        // Three-decimal fixed precision, so daemon and CLI byte-agree.
        let score = out.split("score=").nth(1).unwrap().split(']').next().unwrap();
        assert_eq!(score.split('.').nth(1).unwrap().len(), 3, "{out}");
    }

    #[test]
    fn no_match_renders_empty_list() {
        let idx = index();
        let query = FtQuery::new(FtMode::All, &["zzzmissing"]);
        let outcome = search_index(&idx, "doc", &query, Some(5));
        assert!(outcome.hits.is_empty());
        assert!(!outcome.truncated);
        let mut out = String::new();
        render_search_outcome("q", &outcome, &mut out);
        assert_eq!(out, "q: 0 hits []\n");
    }

    #[test]
    fn collection_search_merges_across_documents() {
        let dir = std::env::temp_dir()
            .join(format!("sxsi-engine-search-col-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let collection = Collection::build(
            dir.join("col.sxsic"),
            vec![
                ("alpha".into(), index()),
                (
                    "beta".into(),
                    SxsiIndex::build_from_xml(b"<a><b>rare gem</b><b>plain</b></a>").unwrap(),
                ),
            ],
        )
        .unwrap();
        let query = FtQuery::new(FtMode::All, &["rare"]);
        let merged =
            search_collection(&BatchExecutor::new(2), &collection, &query, None).unwrap();
        assert!(merged.hits.iter().any(|h| h.doc == "alpha"), "{merged:?}");
        assert!(merged.hits.iter().any(|h| h.doc == "beta"), "{merged:?}");
        for pair in merged.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score, "{merged:?}");
        }
        // Identical at every thread count, and the limit cuts the merged
        // ranking (not any single shard's).
        for threads in [1, 3] {
            let again =
                search_collection(&BatchExecutor::new(threads), &collection, &query, None)
                    .unwrap();
            assert_eq!(again, merged);
        }
        let capped =
            search_collection(&BatchExecutor::new(2), &collection, &query, Some(2)).unwrap();
        assert_eq!(capped.hits, merged.hits[..2].to_vec());
        assert!(capped.truncated);
        assert_eq!(capped.total, merged.total);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
