//! Compile-time thread-safety guarantees for the batch engine itself.

use sxsi_engine::{BatchExecutor, BatchResult, QueryBatch, QuerySpec};

fn require_send_sync<T: Send + Sync>() {}

#[test]
fn engine_types_are_send_and_sync() {
    // A compiled batch is shared read-only by every worker; results are
    // collected across threads.
    require_send_sync::<QueryBatch>();
    require_send_sync::<BatchExecutor>();
    require_send_sync::<BatchResult>();
    require_send_sync::<QuerySpec>();
}
