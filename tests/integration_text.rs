//! Text-oriented integration tests: the Medline/word query sets against the
//! naive reference, and consistency of the FM-index predicates with plain
//! scanning over the generated corpora.

use sxsi::{SxsiIndex, SxsiOptions};
use sxsi_baseline::NaiveEvaluator;
use sxsi_datagen::{medline, wiki, MedlineConfig, WikiConfig};
use sxsi_text::TextPredicate;
use sxsi_xpath::{parse_query, MEDLINE_QUERIES, WORD_QUERIES};

#[test]
fn medline_queries_match_reference() {
    let xml = medline::generate(&MedlineConfig { num_citations: 120, seed: 5 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let naive = NaiveEvaluator::new(index.tree(), index.texts());
    for q in MEDLINE_QUERIES {
        let parsed = parse_query(q.xpath).unwrap();
        assert_eq!(
            index.count(q.xpath).unwrap() as usize,
            naive.count(&parsed),
            "{} count differs",
            q.id
        );
    }
}

#[test]
fn word_queries_match_reference_on_both_corpora() {
    let medline_xml = medline::generate(&MedlineConfig { num_citations: 100, seed: 6 });
    let wiki_xml = wiki::generate(&WikiConfig { num_pages: 120, seed: 6 });
    for xml in [medline_xml, wiki_xml] {
        let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        for q in WORD_QUERIES {
            let parsed = parse_query(q.xpath).unwrap();
            assert_eq!(
                index.count(q.xpath).unwrap() as usize,
                naive.count(&parsed),
                "{} count differs",
                q.id
            );
        }
    }
}

#[test]
fn fm_index_predicates_agree_with_plain_scans() {
    let xml = medline::generate(&MedlineConfig { num_citations: 80, seed: 7 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let texts = index.texts();
    let plain = texts.plain().expect("plain copy kept by default");
    for pattern in ["plus", "blood", "the", "Barnes", "AUSTRALIA", "zzzz"] {
        let p = pattern.as_bytes();
        assert_eq!(texts.contains(p), plain.scan_contains(p), "contains {pattern}");
        assert_eq!(texts.starts_with(p), plain.scan_starts_with(p), "starts_with {pattern}");
        assert_eq!(texts.ends_with(p), plain.scan_ends_with(p), "ends_with {pattern}");
        assert_eq!(texts.equals(p), plain.scan_equals(p), "equals {pattern}");
        assert_eq!(texts.global_count(p), plain.scan_global_count(p), "global_count {pattern}");
    }
}

#[test]
fn bottom_up_and_top_down_agree() {
    let xml = medline::generate(&MedlineConfig { num_citations: 120, seed: 8 });
    let default = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let forced = SxsiIndex::build_from_xml_with_options(
        xml.as_bytes(),
        SxsiOptions { force_top_down: true, ..Default::default() },
    )
    .expect("builds");
    for q in MEDLINE_QUERIES {
        assert_eq!(
            default.count(q.xpath).unwrap(),
            forced.count(q.xpath).unwrap(),
            "{} strategy mismatch",
            q.id
        );
    }
}

#[test]
fn text_extraction_roundtrips() {
    let xml = medline::generate(&MedlineConfig { num_citations: 30, seed: 9 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let texts = index.texts();
    for d in 0..texts.num_texts() {
        let content = texts.get_text(d);
        assert_eq!(content.len(), texts.text_len(d));
        if !content.is_empty() {
            // The extracted text matches itself through the index.
            let ids = texts.matching_texts(&TextPredicate::Equals(content.clone()));
            assert!(ids.contains(&d), "text {d} not found by equality search");
        }
    }
}
