//! Text-oriented integration tests: the Medline/word query sets against the
//! naive reference, and consistency of the FM-index predicates with plain
//! scanning over the generated corpora.

use sxsi::{SxsiIndex, SxsiOptions};
use sxsi_baseline::NaiveEvaluator;
use sxsi_datagen::{medline, wiki, MedlineConfig, WikiConfig};
use sxsi_text::TextPredicate;
use sxsi_xpath::{parse_query, MEDLINE_QUERIES, WORD_QUERIES};

#[test]
fn medline_queries_match_reference() {
    let xml = medline::generate(&MedlineConfig { num_citations: 120, seed: 5 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let naive = NaiveEvaluator::new(index.tree(), index.texts());
    for q in MEDLINE_QUERIES {
        let parsed = parse_query(q.xpath).unwrap();
        assert_eq!(
            index.count(q.xpath).unwrap() as usize,
            naive.count(&parsed),
            "{} count differs",
            q.id
        );
    }
}

#[test]
fn word_queries_match_reference_on_both_corpora() {
    let medline_xml = medline::generate(&MedlineConfig { num_citations: 100, seed: 6 });
    let wiki_xml = wiki::generate(&WikiConfig { num_pages: 120, seed: 6 });
    for xml in [medline_xml, wiki_xml] {
        let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        for q in WORD_QUERIES {
            let parsed = parse_query(q.xpath).unwrap();
            assert_eq!(
                index.count(q.xpath).unwrap() as usize,
                naive.count(&parsed),
                "{} count differs",
                q.id
            );
        }
    }
}

#[test]
fn fm_index_predicates_agree_with_plain_scans() {
    let xml = medline::generate(&MedlineConfig { num_citations: 80, seed: 7 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let texts = index.texts();
    let plain = texts.plain().expect("plain copy kept by default");
    for pattern in ["plus", "blood", "the", "Barnes", "AUSTRALIA", "zzzz"] {
        let p = pattern.as_bytes();
        assert_eq!(texts.contains(p), plain.scan_contains(p), "contains {pattern}");
        assert_eq!(texts.starts_with(p), plain.scan_starts_with(p), "starts_with {pattern}");
        assert_eq!(texts.ends_with(p), plain.scan_ends_with(p), "ends_with {pattern}");
        assert_eq!(texts.equals(p), plain.scan_equals(p), "equals {pattern}");
        assert_eq!(texts.global_count(p), plain.scan_global_count(p), "global_count {pattern}");
    }
}

#[test]
fn bottom_up_and_top_down_agree() {
    let xml = medline::generate(&MedlineConfig { num_citations: 120, seed: 8 });
    let default = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let forced = SxsiIndex::build_from_xml_with_options(
        xml.as_bytes(),
        SxsiOptions { force_top_down: true, ..Default::default() },
    )
    .expect("builds");
    for q in MEDLINE_QUERIES {
        assert_eq!(
            default.count(q.xpath).unwrap(),
            forced.count(q.xpath).unwrap(),
            "{} strategy mismatch",
            q.id
        );
    }
}

#[test]
fn text_extraction_roundtrips() {
    let xml = medline::generate(&MedlineConfig { num_citations: 30, seed: 9 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let texts = index.texts();
    for d in 0..texts.num_texts() {
        let content = texts.get_text(d);
        assert_eq!(content.len(), texts.text_len(d));
        if !content.is_empty() {
            // The extracted text matches itself through the index.
            let ids = texts.matching_texts(&TextPredicate::Equals(content.clone()));
            assert!(ids.contains(&d), "text {d} not found by equality search");
        }
    }
}

/// Multi-byte UTF-8 regression: needles that cut across codepoint
/// boundaries — a lone continuation byte, a lead byte without its tail,
/// the tail of one emoji glued to the head of the next — must never
/// panic anywhere in the FM-index machinery (backward search over bytes
/// that may not even occur, locate walks, the scan cut-off path) and
/// must agree with a naive byte-window scan on every contains variant.
#[test]
fn cross_codepoint_needles_agree_with_naive_scan() {
    use sxsi_text::{TextCollection, TextCollectionOptions};

    let texts: Vec<&[u8]> = vec![
        "caf\u{e9} au lait".as_bytes(),
        "na\u{ef}ve r\u{e9}sum\u{e9}".as_bytes(),
        "\u{1F600}\u{1F601}grin".as_bytes(),
        "\u{a0}nbsp\u{a0}pad".as_bytes(),
        b"plain ascii",
        b"",
    ];
    let emoji = "\u{1F600}\u{1F601}".as_bytes(); // f0 9f 98 80 f0 9f 98 81
    let mut needles: Vec<Vec<u8>> = vec![
        "\u{e9}".as_bytes().to_vec(),    // a full two-byte codepoint
        vec![0xa9, b' '],                // tail of é + the following space
        vec![0xa9],                      // lone continuation byte
        vec![0xc3],                      // lone lead byte
        emoji[2..6].to_vec(),            // tail of 😀 + head of 😁
        emoji[3..5].to_vec(),            // last byte of one + first of next
        vec![0xff],                      // byte absent from every text
        "\u{e9} a".as_bytes().to_vec(),  // crosses codepoint AND word boundary
        "\u{a0}pad".as_bytes().to_vec(),
    ];
    // Every window of the emoji pair, aligned or not.
    for len in 1..=emoji.len() {
        needles.extend(emoji.windows(len).map(<[u8]>::to_vec));
    }

    // scan_cutoff: 0 forces the plain-scan path wherever a plain copy
    // exists, so both branches of `contains` face the hostile needles.
    for options in [
        TextCollectionOptions::default(),
        TextCollectionOptions { scan_cutoff: 0, ..Default::default() },
        TextCollectionOptions { keep_plain_text: false, ..Default::default() },
    ] {
        let col = TextCollection::with_options(&texts, options.clone());
        for needle in &needles {
            let naive_ids: Vec<usize> = (0..texts.len())
                .filter(|&i| texts[i].windows(needle.len()).any(|w| w == &needle[..]))
                .collect();
            let naive_pos: Vec<(usize, usize)> = (0..texts.len())
                .flat_map(|i| {
                    texts[i]
                        .windows(needle.len())
                        .enumerate()
                        .filter(|(_, w)| *w == &needle[..])
                        .map(move |(off, _)| (i, off))
                        .collect::<Vec<_>>()
                })
                .collect();
            let label = format!("{needle:?} with {options:?}");
            assert_eq!(col.contains(needle), naive_ids, "contains {label}");
            assert_eq!(col.contains_count(needle), naive_ids.len(), "count {label}");
            assert_eq!(col.contains_positions(needle), naive_pos, "positions {label}");
            assert_eq!(col.global_count(needle), naive_pos.len(), "global {label}");
            assert_eq!(col.contains_exists(needle), !naive_pos.is_empty(), "exists {label}");
        }
    }
}
