//! Fuzz regression corpus: inputs that once looked risky (or that the
//! grammar/mutator families are known to produce) pinned as ordinary
//! tests, so every CI run replays them without the fuzz binary.
//!
//! Each case asserts the trust-boundary contract directly: the driver
//! returns a structured accept/reject instead of panicking.  New fuzz
//! findings should be appended here as bytes with a comment naming the
//! failing `(driver, seed, iteration)` triple they came from.

use sxsi::WriteInto;
use sxsi_fuzz::{drive_container, drive_frame, drive_xml, mutate_bytes, FuzzRng};

/// XML corpus: malformed nesting, truncations, entity and encoding
/// edge cases.  None of these should parse-panic.
const XML_CORPUS: &[&[u8]] = &[
    b"",
    b"<",
    b"<a",
    b"<a>",
    b"</a>",
    b"<a></b>",
    b"<a><b></a></b>",
    b"<a/><a/>",
    b"<a >x</a >",
    b"<a b=>x</a>",
    b"<a b='1' b='2'/>",
    b"<a>&unknown;</a>",
    b"<a>&#xZZ;</a>",
    b"<a>&#1114112;</a>",
    b"<?xml?><a/>",
    b"<!-- unterminated <a/>",
    b"<![CDATA[raw <not> xml]]>",
    b"<a><![CDATA[x]]></a>",
    b"\xff\xfe<a/>",
    b"<a>\xc3</a>",
    b"<a\x00/>",
];

/// Container corpus: framing edge cases around the magic, version,
/// section lengths and the end marker.
fn container_corpus() -> Vec<Vec<u8>> {
    let mut corpus: Vec<Vec<u8>> = vec![
        Vec::new(),
        b"SXSIIDX".to_vec(),
        b"SXSIIDX\0".to_vec(),
        b"SXSIIDX\0\x02\x00\x00\x00".to_vec(),
        b"SXSIIDX\0\xff\xff\xff\xff".to_vec(),
        // Section with an absurd length and no payload.
        {
            let mut v = b"SXSIIDX\0\x02\x00\x00\x00\x01".to_vec();
            v.extend_from_slice(&u64::MAX.to_le_bytes());
            v
        },
        // End marker with trailing garbage.
        b"SXSIIDX\0\x02\x00\x00\x00\x00garbage".to_vec(),
    ];
    // Deterministic mutants of a valid index, pinned by seed so the same
    // byte patterns replay forever.
    let valid = sxsi::SxsiIndex::build_from_xml(b"<r><x a='1'>t</x><x/></r>")
        .expect("corpus seed document must parse")
        .to_bytes();
    for seed in [1u64, 2, 3, 0xdead, 0xbeef] {
        let mut rng = FuzzRng::new(seed);
        let mut data = valid.clone();
        mutate_bytes(&mut rng, &mut data);
        corpus.push(data);
    }
    corpus
}

/// Protocol corpus: command-line shapes the dispatcher must reject (or
/// accept) without panicking.
const FRAME_CORPUS: &[&[u8]] = &[
    b"",
    b"\n",
    b"hello",
    b"hello one",
    b"hello 1 extra",
    b"query",
    b"query index=",
    b"query =value",
    b"query output=count\n",
    b"query output=count\n//missing-newline-body",
    b"query limit=-1",
    b"query offset=99999999999999999999",
    b"stats extra tokens here",
    b"\xf0\x9f\xa6\x80",
    b"\xff\xff\xff\xff",
    b"query output=count\n%GG", // invalid escape in the query body
];

#[test]
fn xml_corpus_never_panics() {
    for case in XML_CORPUS {
        let _ = drive_xml(case);
    }
}

#[test]
fn container_corpus_never_panics() {
    for case in container_corpus() {
        let _ = drive_container(&case);
    }
}

#[test]
fn frame_corpus_never_panics() {
    for case in FRAME_CORPUS {
        let _ = drive_frame(case);
    }
}

#[test]
fn pinned_smoke_run_stays_deterministic() {
    // A tiny pinned run: same seed, same counts.  If generation drifts
    // (RNG or grammar changes), this fails loudly so the corpus and any
    // recorded replay triples are re-examined together.
    let (a1, r1) = sxsi_fuzz::run_driver("xml", sxsi_fuzz::xml_input, drive_xml, 99, 40)
        .expect("pinned run must not panic");
    let (a2, r2) = sxsi_fuzz::run_driver("xml", sxsi_fuzz::xml_input, drive_xml, 99, 40)
        .expect("pinned run must not panic");
    assert_eq!((a1, r1), (a2, r2));
    assert_eq!(a1 + r1, 40);
}
