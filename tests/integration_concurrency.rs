//! Parallel-vs-sequential equivalence over the paper's full query sets.
//!
//! For every query in `crates/xpath/src/queries.rs` (XMark X01–X17,
//! Treebank T01–T05, Medline M01–M11, word-based W01–W10), the batch
//! executor — at several pool sizes — must return exactly the counts and
//! node sets a sequential [`Evaluator`] produces on the same generated
//! corpus.  This is the correctness half of the concurrency tentpole: the
//! throughput half lives in `crates/bench/benches/concurrency_throughput.rs`.

use std::sync::Arc;

use sxsi::SxsiIndex;
use sxsi_datagen::{medline, treebank, wiki, xmark};
use sxsi_datagen::{MedlineConfig, TreebankConfig, WikiConfig, XMarkConfig};
use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
use sxsi_xpath::eval::{EvalOptions, Evaluator};
use sxsi_xpath::{compile, parse_query, NamedQuery};
use sxsi_xpath::{MEDLINE_QUERIES, TREEBANK_QUERIES, WORD_QUERIES, XMARK_QUERIES};

/// Sequential reference answers computed with a plain single-threaded
/// [`Evaluator`] (the pre-engine execution path).
fn sequential_reference(index: &SxsiIndex, queries: &[NamedQuery]) -> Vec<(u64, Vec<u64>)> {
    queries
        .iter()
        .map(|q| {
            let parsed = parse_query(q.xpath).unwrap_or_else(|e| panic!("{}: {e}", q.id));
            let automaton =
                compile(&parsed, index.tree()).unwrap_or_else(|e| panic!("{}: {e}", q.id));
            let mut counter =
                Evaluator::new(&automaton, index.tree(), Some(index.texts()), EvalOptions::default());
            let count = counter.count();
            let mut materializer =
                Evaluator::new(&automaton, index.tree(), Some(index.texts()), EvalOptions::default());
            let nodes = materializer.materialize().into_iter().map(|n| n as u64).collect();
            (count, nodes)
        })
        .collect()
}

/// Runs `queries` through the batch executor at several pool sizes and
/// checks counts and node sets against the sequential reference.
fn assert_parallel_matches_sequential(corpus: &str, xml: &str, queries: &[NamedQuery]) {
    let index = Arc::new(SxsiIndex::build_from_xml(xml.as_bytes()).expect("index builds"));
    let reference = sequential_reference(&index, queries);

    let mut specs = Vec::new();
    for q in queries {
        specs.push(QuerySpec::count(format!("{}/count", q.id), q.xpath));
        specs.push(QuerySpec::nodes(format!("{}/nodes", q.id), q.xpath));
    }
    let batch = QueryBatch::compile(&index, specs).expect("benchmark queries compile");

    for threads in [1usize, 2, 4] {
        let results = BatchExecutor::new(threads).run(&index, &batch);
        assert_eq!(results.len(), 2 * queries.len());
        for (qi, q) in queries.iter().enumerate() {
            let (ref_count, ref_nodes) = &reference[qi];
            let count_result = &results[2 * qi];
            let nodes_result = &results[2 * qi + 1];
            assert_eq!(count_result.id, format!("{}/count", q.id));
            assert_eq!(
                count_result.result.count(),
                *ref_count,
                "{corpus} {} count diverged at {threads} threads",
                q.id
            );
            let nodes: Vec<u64> = nodes_result
                .result
                .nodes()
                .unwrap_or_else(|| panic!("{} returned a bare count", q.id))
                .iter()
                .map(|&n| n as u64)
                .collect();
            assert_eq!(
                &nodes, ref_nodes,
                "{corpus} {} node set diverged at {threads} threads",
                q.id
            );
        }
    }
}

#[test]
fn xmark_queries_parallel_equivalence() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.1, seed: 7 });
    assert_parallel_matches_sequential("xmark", &xml, XMARK_QUERIES);
}

#[test]
fn treebank_queries_parallel_equivalence() {
    let xml = treebank::generate(&TreebankConfig { num_sentences: 400, seed: 7 });
    assert_parallel_matches_sequential("treebank", &xml, TREEBANK_QUERIES);
}

#[test]
fn medline_queries_parallel_equivalence() {
    let xml = medline::generate(&MedlineConfig { num_citations: 200, seed: 7 });
    assert_parallel_matches_sequential("medline", &xml, MEDLINE_QUERIES);
    // W01–W05 are Medline word queries.
    assert_parallel_matches_sequential("medline", &xml, &WORD_QUERIES[..5]);
}

#[test]
fn wiki_queries_parallel_equivalence() {
    let xml = wiki::generate(&WikiConfig { num_pages: 120, seed: 7 });
    // W06–W10 run over the wiki corpus.
    assert_parallel_matches_sequential("wiki", &xml, &WORD_QUERIES[5..]);
}
