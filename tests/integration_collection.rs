//! The collection layer's differential suite: every corpus is split into
//! a per-subtree multi-document collection, and collection query results
//! (count / exists / nodes / windows) are checked against the oracle —
//! the concatenation of per-document single-index runs — sequentially
//! and through the parallel [`CollectionExecutor`] at several pool
//! sizes, over all 43 paper queries plus O01–O20 (63 queries total).
//!
//! Also pinned here: the per-shard early-termination criterion (summed
//! visited-node counters strictly lower for `exists`/first-1 than full
//! materialization on at least 50 of the 63 queries), the `sxsi verify
//! --deep` exit-5 contract on every seeded manifest/segment corruption
//! class, the distinct structured CLI error codes, and byte-equivalence
//! of CLI collection output with the in-process renderer.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

use sxsi::{QueryOptions, Strategy, SxsiIndex};
use sxsi_collection::{Collection, DocNode};
use sxsi_datagen::{
    medline, treebank, wiki, xmark, MedlineConfig, TreebankConfig, WikiConfig, XMarkConfig,
};
use sxsi_engine::collection::{render_collection_result, CollectionExecutor};
use sxsi_engine::server::OutputKind;
use sxsi_xpath::{
    MEDLINE_QUERIES, ORDERED_QUERIES, TREEBANK_QUERIES, WORD_QUERIES, XMARK_QUERIES,
};

struct SplitCorpus {
    name: &'static str,
    collection: Collection,
}

/// The four corpora of the paper's evaluation, each split per-subtree
/// into a multi-document collection: the root's element children are
/// chunked into five documents, every document re-wrapped in the
/// original root tag, so per-document runs remain well-formed.
fn corpora() -> &'static Vec<SplitCorpus> {
    static CORPORA: OnceLock<Vec<SplitCorpus>> = OnceLock::new();
    CORPORA.get_or_init(|| {
        let dir = std::env::temp_dir()
            .join(format!("sxsi-integration-collection-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        vec![
            split("xmark", &xmark::generate(&XMarkConfig { scale: 0.03, seed: 13 }), &dir),
            split(
                "treebank",
                &treebank::generate(&TreebankConfig { num_sentences: 60, seed: 13 }),
                &dir,
            ),
            split(
                "medline",
                &medline::generate(&MedlineConfig { num_citations: 40, seed: 13 }),
                &dir,
            ),
            split("wiki", &wiki::generate(&WikiConfig { num_pages: 40, seed: 13 }), &dir),
        ]
    })
}

/// The document's root element name, skipping any prolog.
fn root_tag(xml: &str) -> &str {
    let mut rest = xml;
    loop {
        let open = rest.find('<').expect("document has a root element");
        let after = &rest[open + 1..];
        if after.starts_with('?') || after.starts_with('!') {
            let close = after.find('>').expect("prolog closes");
            rest = &after[close + 1..];
            continue;
        }
        let end = after
            .find(|c: char| c.is_whitespace() || c == '>' || c == '/')
            .expect("root tag closes");
        return &after[..end];
    }
}

fn split(name: &'static str, xml: &str, dir: &Path) -> SplitCorpus {
    let whole = SxsiIndex::build_from_xml(xml.as_bytes()).expect("corpus builds");
    let children = whole.materialize("/*/*").expect("root children materialize");
    assert!(children.len() >= 5, "{name}: too few root children to split");
    let root = root_tag(xml);
    let per_doc = children.len().div_ceil(5);
    let mut docs = Vec::new();
    for (i, chunk) in children.chunks(per_doc).enumerate() {
        let mut doc = format!("<{root}>");
        for &child in chunk {
            doc.push_str(&whole.get_subtree(child));
        }
        doc.push_str(&format!("</{root}>"));
        docs.push((
            format!("{name}-{i}"),
            SxsiIndex::build_from_xml(doc.as_bytes()).expect("split doc builds"),
        ));
    }
    let collection =
        Collection::build(dir.join(format!("{name}.sxsic")), docs).expect("collection builds");
    SplitCorpus { name, collection }
}

/// The paper + ordered queries that run on `corpus` (63 across all four).
fn queries_for(corpus: &str) -> Vec<(&'static str, &'static str)> {
    let mut queries: Vec<(&'static str, &'static str)> = Vec::new();
    match corpus {
        "xmark" => queries.extend(XMARK_QUERIES.iter().map(|q| (q.id, q.xpath))),
        "treebank" => queries.extend(TREEBANK_QUERIES.iter().map(|q| (q.id, q.xpath))),
        "medline" => {
            queries.extend(MEDLINE_QUERIES.iter().map(|q| (q.id, q.xpath)));
            // W01–W05 run over Medline.
            queries
                .extend(WORD_QUERIES.iter().filter(|q| q.id < "W06").map(|q| (q.id, q.xpath)));
        }
        "wiki" => {
            // W06–W10 run over the wiki corpus.
            queries
                .extend(WORD_QUERIES.iter().filter(|q| q.id >= "W06").map(|q| (q.id, q.xpath)));
        }
        other => panic!("unknown corpus {other}"),
    }
    queries.extend(
        ORDERED_QUERIES.iter().filter(|q| q.corpus == corpus).map(|q| (q.id, q.xpath)),
    );
    queries
}

/// The differential oracle: concatenated per-document single-index full
/// materializations, doc-major (which is exactly the collection's
/// global document order).
fn oracle_full(collection: &Collection, xpath: &str) -> Vec<DocNode> {
    let mut nodes = Vec::new();
    for doc in 0..collection.num_docs() {
        let index = collection.segment(doc).expect("segment loads");
        for node in index.materialize(xpath).expect("oracle run") {
            nodes.push(DocNode { doc, node });
        }
    }
    nodes
}

/// All 63 queries exist across the four corpora, and together they
/// exercise all three evaluation strategies.
#[test]
fn the_suite_covers_63_queries_and_all_three_strategies() {
    let mut total = 0usize;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for corpus in corpora() {
        let index = corpus.collection.segment(0).expect("segment loads");
        for (id, xpath) in queries_for(corpus.name) {
            total += 1;
            let prepared = index.prepare(xpath).unwrap_or_else(|e| {
                panic!("{} {id} must compile against a split document: {e}", corpus.name)
            });
            seen.insert(format!("{:?}", prepared.strategy()));
        }
    }
    assert_eq!(total, 63, "43 paper queries + O01-O20");
    for strategy in [Strategy::TopDown, Strategy::BottomUp, Strategy::Direct] {
        assert!(
            seen.contains(&format!("{strategy:?}")),
            "suite exercises no {strategy:?} plan (saw {seen:?})"
        );
    }
}

/// The core differential: collection count/exists/nodes results equal
/// the concatenation of per-document single-index runs, sequentially
/// and through the parallel executor at 1/2/4 threads.
#[test]
fn collection_results_match_concatenated_per_document_runs() {
    for corpus in corpora() {
        let collection = &corpus.collection;
        for (id, xpath) in queries_for(corpus.name) {
            let full = oracle_full(collection, xpath);

            let seq = CollectionExecutor::run_sequential(collection, xpath, &QueryOptions::nodes())
                .expect("sequential nodes run");
            assert_eq!(seq.nodes(), &full[..], "{} {id} sequential nodes", corpus.name);
            assert!(!seq.truncated(), "{} {id} unlimited run truncated", corpus.name);
            let seq_count =
                CollectionExecutor::run_sequential(collection, xpath, &QueryOptions::count())
                    .expect("sequential count run");
            assert_eq!(
                seq_count.count(),
                full.len() as u64,
                "{} {id} sequential count",
                corpus.name
            );
            let seq_exists =
                CollectionExecutor::run_sequential(collection, xpath, &QueryOptions::exists())
                    .expect("sequential exists run");
            assert_eq!(
                seq_exists.exists(),
                !full.is_empty(),
                "{} {id} sequential exists",
                corpus.name
            );

            for threads in [1usize, 2, 4] {
                let executor = CollectionExecutor::new(threads);
                let nodes = executor
                    .run(collection, xpath, &QueryOptions::nodes())
                    .expect("parallel nodes run");
                assert_eq!(nodes.nodes(), &full[..], "{} {id} @{threads}t nodes", corpus.name);
                assert!(!nodes.truncated(), "{} {id} @{threads}t truncated", corpus.name);
                assert_eq!(
                    executor
                        .run(collection, xpath, &QueryOptions::count())
                        .expect("parallel count run")
                        .count(),
                    full.len() as u64,
                    "{} {id} @{threads}t count",
                    corpus.name
                );
                assert_eq!(
                    executor
                        .run(collection, xpath, &QueryOptions::exists())
                        .expect("parallel exists run")
                        .exists(),
                    !full.is_empty(),
                    "{} {id} @{threads}t exists",
                    corpus.name
                );
            }
        }
    }
}

const WINDOWS: &[(u64, u64)] = &[(0, 0), (1, 0), (1, 1), (3, 2), (7, 0), (10_000, 0)];

/// Limit/offset windows equal the corresponding slice of the merged
/// full run, with an exact truncation flag — the PR-5 window-oracle
/// pattern lifted to collections, on both execution paths.
#[test]
fn windows_match_slices_of_the_merged_full_run() {
    let executor = CollectionExecutor::new(2);
    for corpus in corpora() {
        let collection = &corpus.collection;
        for (id, xpath) in queries_for(corpus.name) {
            let full = oracle_full(collection, xpath);
            for &(limit, offset) in WINDOWS {
                let lo = offset.min(full.len() as u64) as usize;
                let hi = offset.saturating_add(limit).min(full.len() as u64) as usize;
                let expected = &full[lo..hi];
                let expect_more = (full.len() as u64) > offset.saturating_add(limit);
                let options = QueryOptions::nodes().with_limit(limit).with_offset(offset);

                let parallel =
                    executor.run(collection, xpath, &options).expect("parallel window");
                assert_eq!(
                    parallel.nodes(),
                    expected,
                    "{} {id} limit {limit} offset {offset} parallel",
                    corpus.name
                );
                assert_eq!(
                    parallel.truncated(),
                    expect_more,
                    "{} {id} limit {limit} offset {offset} parallel truncation",
                    corpus.name
                );

                let sequential = CollectionExecutor::run_sequential(collection, xpath, &options)
                    .expect("sequential window");
                assert_eq!(
                    sequential.nodes(),
                    expected,
                    "{} {id} limit {limit} offset {offset} sequential",
                    corpus.name
                );
                assert_eq!(
                    sequential.truncated(),
                    expect_more,
                    "{} {id} limit {limit} offset {offset} sequential truncation",
                    corpus.name
                );

                let counted = executor
                    .run(
                        collection,
                        xpath,
                        &QueryOptions::count().with_limit(limit).with_offset(offset),
                    )
                    .expect("windowed count");
                assert_eq!(
                    counted.count(),
                    expected.len() as u64,
                    "{} {id} limit {limit} offset {offset} count",
                    corpus.name
                );
                assert_eq!(
                    counted.truncated(),
                    expect_more,
                    "{} {id} limit {limit} offset {offset} count truncation",
                    corpus.name
                );
            }
        }
    }
}

/// Early termination pays off: summed visited-node counters are never
/// higher for `exists`/first-1 than for full materialization, and
/// strictly lower on at least 50 of the 63 queries.  Both termination
/// layers count — the per-shard `Exists`/window pushdown of the
/// parallel executor and the cross-document stop of the sequential
/// path (which skips every document after the window is provably
/// settled).
#[test]
fn early_termination_beats_full_materialization_on_most_queries() {
    let executor = CollectionExecutor::new(2);
    let mut improved = 0usize;
    let mut total = 0usize;
    for corpus in corpora() {
        let collection = &corpus.collection;
        for (id, xpath) in queries_for(corpus.name) {
            total += 1;
            let par = |options: QueryOptions| {
                executor
                    .run(collection, xpath, &options.with_stats(true))
                    .expect("stats run")
                    .stats()
                    .expect("stats collected")
                    .visited_nodes
            };
            let seq = |options: QueryOptions| {
                CollectionExecutor::run_sequential(collection, xpath, &options.with_stats(true))
                    .expect("sequential stats run")
                    .stats()
                    .expect("stats collected")
                    .visited_nodes
            };
            let full = par(QueryOptions::nodes());
            assert_eq!(
                seq(QueryOptions::nodes()),
                full,
                "{} {id}: an unbounded run visits the same nodes on both paths",
                corpus.name
            );
            let terminated = [
                par(QueryOptions::exists()),
                par(QueryOptions::nodes().with_limit(1)),
                seq(QueryOptions::exists()),
                seq(QueryOptions::nodes().with_limit(1)),
            ];
            for visited in terminated {
                assert!(
                    visited <= full,
                    "{} {id}: terminated run visited {visited} > full {full}",
                    corpus.name
                );
            }
            // The queries that cannot strictly improve are inherent:
            // zero-text-match word queries visit 0 nodes either way, and
            // a handful of bottom-up plans do text-match-driven work that
            // an existence probe cannot shrink.
            if terminated.iter().any(|&visited| visited < full) {
                improved += 1;
            }
        }
    }
    assert_eq!(total, 63);
    eprintln!("early termination strictly improved {improved}/{total} queries");
    assert!(
        improved >= 50,
        "early termination strictly improved only {improved}/{total} queries"
    );
}

// ---------------------------------------------------------------------------
// CLI contracts (exit codes, structured errors, rendering equivalence).
// ---------------------------------------------------------------------------

fn sxsi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sxsi"))
}

fn cli_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("sxsi-collection-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create CLI test dir");
    dir
}

/// Builds a three-document collection in `dir` via the CLI and returns
/// the manifest path.
fn build_cli_collection(dir: &Path) -> PathBuf {
    std::fs::write(dir.join("d1.xml"), "<a><b>one</b><c/></a>").unwrap();
    std::fs::write(dir.join("d2.xml"), "<a><b/><b>two</b></a>").unwrap();
    std::fs::write(dir.join("d3.xml"), "<a><c><b/></c></a>").unwrap();
    let manifest = dir.join("col.sxsic");
    let output = sxsi()
        .arg("build-collection")
        .arg(&manifest)
        .arg(dir.join("d1.xml"))
        .arg(dir.join("d2.xml"))
        .arg(dir.join("d3.xml"))
        .output()
        .expect("run build-collection");
    assert!(
        output.status.success(),
        "build-collection failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    manifest
}

/// Every seeded corruption class makes `sxsi verify --deep` exit 5 and
/// print a structured `collection-*` issue code — never a panic, never
/// a zero exit.
#[test]
fn cli_verify_deep_exits_5_on_each_corruption_class() {
    type Corruption<'a> = (&'a str, &'a dyn Fn(&Path), &'a str);
    let corruptions: &[Corruption] = &[
        (
            "manifest-bit-flip",
            &|dir| {
                let path = dir.join("col.sxsic");
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
                std::fs::write(&path, bytes).unwrap();
            },
            "collection-manifest-",
        ),
        (
            "manifest-truncation",
            &|dir| {
                let path = dir.join("col.sxsic");
                let bytes = std::fs::read(&path).unwrap();
                std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
            },
            "collection-manifest-",
        ),
        (
            "manifest-bad-magic",
            &|dir| {
                let path = dir.join("col.sxsic");
                let mut bytes = std::fs::read(&path).unwrap();
                bytes[0] = b'X';
                std::fs::write(&path, bytes).unwrap();
            },
            "collection-manifest-magic",
        ),
        (
            "manifest-wrong-version",
            &|dir| {
                let path = dir.join("col.sxsic");
                let mut bytes = std::fs::read(&path).unwrap();
                bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
                std::fs::write(&path, bytes).unwrap();
            },
            "collection-manifest-version",
        ),
        (
            "segment-missing",
            &|dir| {
                std::fs::remove_file(dir.join("col.d1.sxsi")).unwrap();
            },
            "collection-segment-missing",
        ),
        (
            "segment-renamed",
            &|dir| {
                std::fs::rename(dir.join("col.d2.sxsi"), dir.join("col.d2.renamed")).unwrap();
            },
            "collection-segment-missing",
        ),
        (
            "segment-bit-flip",
            &|dir| {
                let path = dir.join("col.d0.sxsi");
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
                std::fs::write(&path, bytes).unwrap();
            },
            "collection-segment-checksum",
        ),
    ];
    for (tag, corrupt, expected_code) in corruptions {
        let dir = cli_dir(&format!("corrupt-{tag}"));
        let manifest = build_cli_collection(&dir);
        corrupt(&dir);
        let output = sxsi().arg("verify").arg(&manifest).arg("--deep").output().unwrap();
        assert_eq!(
            output.status.code(),
            Some(5),
            "{tag}: expected exit 5, got {:?}\nstdout: {}\nstderr: {}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains(expected_code),
            "{tag}: expected a {expected_code} issue, got:\n{stdout}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A clean collection verifies with exit 0, quick and deep.
#[test]
fn cli_verify_accepts_a_clean_collection() {
    let dir = cli_dir("verify-clean");
    let manifest = build_cli_collection(&dir);
    for deep in [false, true] {
        let mut cmd = sxsi();
        cmd.arg("verify").arg(&manifest);
        if deep {
            cmd.arg("--deep");
        }
        let output = cmd.output().unwrap();
        assert_eq!(
            output.status.code(),
            Some(0),
            "deep={deep}: {}",
            String::from_utf8_lossy(&output.stdout)
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `sxsi info` on a missing path and `sxsi query` with an empty batch
/// file report distinct structured `error code=` lines (both exit 1).
#[test]
fn cli_info_open_and_empty_batch_errors_are_distinct() {
    let dir = cli_dir("error-codes");
    let manifest = build_cli_collection(&dir);

    let missing = dir.join("nope.sxsi");
    let output = sxsi().arg("info").arg(&missing).output().unwrap();
    assert_eq!(output.status.code(), Some(1));
    let info_err = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        info_err.contains("error code=info-open"),
        "info stderr must carry code=info-open, got:\n{info_err}"
    );

    let batch = dir.join("empty.txt");
    std::fs::write(&batch, "# only a comment\n\n").unwrap();
    let output =
        sxsi().arg("query").arg(&manifest).arg("--queries-file").arg(&batch).output().unwrap();
    assert_eq!(output.status.code(), Some(1));
    let batch_err = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        batch_err.contains("error code=empty-batch"),
        "query stderr must carry code=empty-batch, got:\n{batch_err}"
    );

    // A missing batch file is a third, distinct code.
    let output = sxsi()
        .arg("query")
        .arg(&manifest)
        .arg("--queries-file")
        .arg(dir.join("no-such-file.txt"))
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("error code=batch-file-open"),
        "missing batch file must carry code=batch-file-open"
    );

    assert!(!info_err.contains("empty-batch") && !batch_err.contains("info-open"));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// CLI collection query output is byte-identical to the in-process
/// renderer (the same function the daemon uses) for every output kind.
#[test]
fn cli_collection_output_matches_in_process_rendering() {
    let dir = cli_dir("render-equiv");
    let manifest = build_cli_collection(&dir);
    let collection = Collection::open(&manifest).expect("open CLI-built collection");
    let executor = CollectionExecutor::new(2);
    let cases: &[(&[&str], OutputKind, QueryOptions)] = &[
        (&[], OutputKind::Count, QueryOptions::count()),
        (&["--materialize"], OutputKind::Nodes, QueryOptions::nodes()),
        (&["--serialize"], OutputKind::Serialize, QueryOptions::nodes()),
        (
            &["--materialize", "--limit", "2", "--offset", "1"],
            OutputKind::Nodes,
            QueryOptions::nodes().with_limit(2).with_offset(1),
        ),
    ];
    for (flags, output_kind, options) in cases {
        let output = sxsi()
            .arg("query")
            .arg(&manifest)
            .arg("//b")
            .args(*flags)
            .output()
            .expect("run CLI query");
        assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
        let result = executor.run(&collection, "//b", options).expect("in-process run");
        let mut expected = String::new();
        render_collection_result(&collection, "//b", &result, *output_kind, &mut expected);
        assert_eq!(
            String::from_utf8_lossy(&output.stdout),
            expected,
            "flags {flags:?} must render byte-identically"
        );
    }
    // `exists` parity, including the exit-4 contract.
    let output = sxsi().arg("exists").arg(&manifest).arg("//b").arg("//zzz").output().unwrap();
    assert_eq!(output.status.code(), Some(4), "one query matched nothing");
    let body = String::from_utf8_lossy(&output.stdout);
    assert_eq!(body, "//b: true\n//zzz: false\n");
    std::fs::remove_dir_all(&dir).unwrap();
}
