//! End-to-end equivalence of the SXSI engine and the naive reference
//! evaluator over the paper's structural query sets (X01–X17, T01–T05) on
//! synthetic XMark- and Treebank-like corpora.

use sxsi::{SxsiIndex, SxsiOptions};
use sxsi_baseline::NaiveEvaluator;
use sxsi_datagen::{treebank, xmark, TreebankConfig, XMarkConfig};
use sxsi_xpath::eval::EvalOptions;
use sxsi_xpath::{parse_query, TREEBANK_QUERIES, XMARK_QUERIES};

fn check_queries(index: &SxsiIndex, queries: &[sxsi_xpath::NamedQuery]) {
    let naive = NaiveEvaluator::new(index.tree(), index.texts());
    for q in queries {
        let parsed = parse_query(q.xpath).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let expected = naive.evaluate(&parsed);
        let got = index.materialize(q.xpath).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        assert_eq!(got, expected, "{} materialization differs", q.id);
        let count = index.count(q.xpath).unwrap();
        assert_eq!(count as usize, expected.len(), "{} count differs", q.id);
    }
}

#[test]
fn xmark_queries_match_reference() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.08, seed: 3 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    check_queries(&index, XMARK_QUERIES);
}

#[test]
fn treebank_queries_match_reference() {
    let xml = treebank::generate(&TreebankConfig { num_sentences: 250, seed: 3 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    check_queries(&index, TREEBANK_QUERIES);
}

#[test]
fn optimization_ablation_preserves_results_on_xmark() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.05, seed: 11 });
    let reference = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let configs = [
        EvalOptions::naive(),
        EvalOptions { jumping: true, memoization: false, lazy_regions: false, text_index_predicates: false },
        EvalOptions { jumping: false, memoization: true, lazy_regions: false, text_index_predicates: true },
        EvalOptions::default(),
    ];
    for eval in configs {
        let index = SxsiIndex::build_from_xml_with_options(
            xml.as_bytes(),
            SxsiOptions { eval, ..Default::default() },
        )
        .expect("builds");
        for q in XMARK_QUERIES {
            assert_eq!(
                index.count(q.xpath).unwrap(),
                reference.count(q.xpath).unwrap(),
                "{} differs under {eval:?}",
                q.id
            );
        }
    }
}
