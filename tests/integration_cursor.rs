//! The cursor/truncation contract of the prepared-statement API, verified
//! against the independent naive baseline on all four corpora and all
//! three strategies (top-down, bottom-up, direct), sequentially and
//! through the parallel [`BatchExecutor`]:
//!
//! * `run(limit = k, offset = j)` equals the `[j .. j+k]` slice of the full
//!   materialization (the baseline computes the slice the textbook way:
//!   evaluate fully, then cut);
//! * `Exists` agrees with `count > 0`;
//! * a truncated run's `EvalStats::visited_nodes` never exceeds the
//!   untruncated run's.

use std::sync::OnceLock;

use proptest::prelude::*;
use sxsi::{QueryOptions, SxsiIndex, Strategy};
use sxsi_baseline::NaiveEvaluator;
use sxsi_datagen::{
    medline, treebank, wiki, xmark, MedlineConfig, TreebankConfig, WikiConfig, XMarkConfig,
};
use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
use sxsi_xpath::parse_query;

/// Queries meaningful on every corpus: top-down and direct shapes.
const GENERIC_QUERIES: &[&str] = &[
    "//*",
    "//*//*",
    "//*[2]",
    "//*[last()]",
    "//*[position() <= 3]",
    "//*/..",
    "//*/preceding-sibling::*[1]",
    // A direct-strategy shape whose budgeted final step runs from a
    // many-node context (regression: `limit 0` used to underflow here).
    "//*/*[1]",
];

/// Per-corpus queries chosen to pin each strategy: structural paths
/// (top-down), selective text filters with a non-nesting pivot
/// (bottom-up), and ordered/positional shapes (direct).
fn corpus_queries(corpus: &str) -> Vec<&'static str> {
    let specific: &[&str] = match corpus {
        "xmark" => &[
            "//item",
            "//listitem//keyword",
            r#"//item[ .//keyword[ contains(., "a") ] ]"#,
            r#"//person[ ./name[ contains(., "a") ] ]"#,
            "//item/following::person",
        ],
        "treebank" => &[
            "//NP",
            "//NN",
            r#"//EMPTY[ .//NN[ contains(., "a") ] ]"#,
            "//NP/ancestor::S",
        ],
        "medline" => &[
            "//Article",
            "//AuthorList/Author",
            r#"//Article[ .//AbstractText[ contains(., "a") ] ]"#,
            r#"//Article[ .//LastName[ starts-with(., "B") ] ]"#,
        ],
        "wiki" => &[
            "//page/title",
            "//revision",
            r#"//page[ .//title[ contains(., "a") ] ]"#,
            "//page[1]/title",
        ],
        other => panic!("unknown corpus {other}"),
    };
    GENERIC_QUERIES.iter().chain(specific).copied().collect()
}

fn corpora() -> &'static Vec<(&'static str, SxsiIndex)> {
    static CORPORA: OnceLock<Vec<(&'static str, SxsiIndex)>> = OnceLock::new();
    CORPORA.get_or_init(|| {
        vec![
            ("xmark", build(&xmark::generate(&XMarkConfig { scale: 0.03, seed: 13 }))),
            (
                "treebank",
                build(&treebank::generate(&TreebankConfig { num_sentences: 60, seed: 13 })),
            ),
            ("medline", build(&medline::generate(&MedlineConfig { num_citations: 40, seed: 13 }))),
            ("wiki", build(&wiki::generate(&WikiConfig { num_pages: 40, seed: 13 }))),
        ]
    })
}

fn build(xml: &str) -> SxsiIndex {
    SxsiIndex::build_from_xml(xml.as_bytes()).expect("corpus builds")
}

const WINDOWS: &[(u64, u64)] = &[
    (0, 0),
    (1, 0),
    (1, 1),
    (2, 0),
    (3, 2),
    (7, 0),
    (1, 10_000),
    (10_000, 0),
];

/// The core window property, sequentially, on every corpus × query — and
/// the suite as a whole must exercise all three strategies on each corpus.
#[test]
fn windows_equal_document_order_slices() {
    for (corpus, index) in corpora() {
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        let mut strategies_seen = Vec::new();
        for query in corpus_queries(corpus) {
            let parsed = parse_query(query).unwrap();
            let prepared = index.prepare(query).unwrap();
            strategies_seen.push(prepared.strategy());
            let full = naive.evaluate(&parsed);
            // Full materialization agrees with the oracle.
            let all = prepared.run(index, &QueryOptions::nodes());
            assert_eq!(all.nodes().unwrap(), &full[..], "{corpus} {query} full");
            // Exists agrees with count > 0.
            let exists = prepared.run(index, &QueryOptions::exists());
            assert_eq!(exists.exists(), !full.is_empty(), "{corpus} {query} exists");
            assert_eq!(
                prepared.run(index, &QueryOptions::count()).count(),
                full.len() as u64,
                "{corpus} {query} count"
            );
            for &(limit, offset) in WINDOWS {
                let expected = naive.evaluate_window(&parsed, Some(limit), offset);
                let window = prepared
                    .run(index, &QueryOptions::nodes().with_limit(limit).with_offset(offset));
                assert_eq!(
                    window.nodes().unwrap(),
                    &expected[..],
                    "{corpus} {query} limit {limit} offset {offset}"
                );
                let counted = prepared
                    .run(index, &QueryOptions::count().with_limit(limit).with_offset(offset));
                assert_eq!(
                    counted.count(),
                    expected.len() as u64,
                    "{corpus} {query} windowed count limit {limit} offset {offset}"
                );
            }
        }
        for strategy in [Strategy::TopDown, Strategy::BottomUp, Strategy::Direct] {
            assert!(
                strategies_seen.contains(&strategy),
                "{corpus}: query list exercises no {strategy:?} plan"
            );
        }
    }
}

/// The truncation flag is exact on every strategy: set iff matching nodes
/// exist beyond the returned window — in particular NOT set when the
/// window ends exactly at the last result.
#[test]
fn truncation_flag_is_exact_at_the_boundary() {
    for (corpus, index) in corpora() {
        for query in corpus_queries(corpus) {
            let prepared = index.prepare(query).unwrap();
            let full = prepared.run(index, &QueryOptions::nodes()).count();
            for (limit, offset, expect_more) in [
                (full, 0, false),                 // exactly the whole result
                (full + 1, 0, false),             // window larger than the result
                (full.saturating_sub(1), 1, false), // tail window, exact end
                (1, 0, full > 1),                 // proper prefix
                (full.saturating_sub(1), 0, full >= 1), // all but the last
            ] {
                let run = prepared
                    .run(index, &QueryOptions::nodes().with_limit(limit).with_offset(offset));
                assert_eq!(
                    run.truncated(),
                    expect_more,
                    "{corpus} {query} limit {limit} offset {offset} (full {full})"
                );
            }
        }
    }
}

/// Truncated runs never visit more nodes than untruncated ones.
#[test]
fn truncated_runs_visit_no_more_nodes() {
    for (corpus, index) in corpora() {
        for query in corpus_queries(corpus) {
            let prepared = index.prepare(query).unwrap();
            let full = prepared.run(index, &QueryOptions::nodes());
            let full_visited = full.stats().unwrap().visited_nodes;
            let exists = prepared.run(index, &QueryOptions::exists());
            assert!(
                exists.stats().unwrap().visited_nodes <= full_visited,
                "{corpus} {query}: exists visited {} > full {full_visited}",
                exists.stats().unwrap().visited_nodes,
            );
            for limit in [1, 5] {
                let limited = prepared.run(index, &QueryOptions::nodes().with_limit(limit));
                assert!(
                    limited.stats().unwrap().visited_nodes <= full_visited,
                    "{corpus} {query}: limit {limit} visited {} > full {full_visited}",
                    limited.stats().unwrap().visited_nodes,
                );
            }
        }
    }
}

/// The same contract through the parallel batch executor, at several pool
/// sizes, with specs mixing every mode.
#[test]
fn batch_executor_honors_windows() {
    for (corpus, index) in corpora() {
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        let queries = corpus_queries(corpus);
        let mut specs = Vec::new();
        for q in &queries {
            specs.push(QuerySpec::exists(format!("{q}/exists"), *q));
            specs.push(QuerySpec::count(format!("{q}/count"), *q));
            specs.push(QuerySpec::new(
                format!("{q}/first"),
                *q,
                QueryOptions::nodes().with_limit(1),
            ));
            specs.push(QuerySpec::new(
                format!("{q}/window"),
                *q,
                QueryOptions::nodes().with_limit(2).with_offset(1),
            ));
        }
        let batch = QueryBatch::compile(index, specs).expect("batch compiles");
        for threads in [1usize, 4] {
            let results = BatchExecutor::new(threads).run(index, &batch);
            for (qi, q) in queries.iter().enumerate() {
                let parsed = parse_query(q).unwrap();
                let full = naive.evaluate(&parsed);
                let exists = &results[4 * qi];
                let count = &results[4 * qi + 1];
                let first = &results[4 * qi + 2];
                let window = &results[4 * qi + 3];
                assert_eq!(exists.result.exists(), !full.is_empty(), "{corpus} {q} {threads}t");
                assert_eq!(count.result.count(), full.len() as u64, "{corpus} {q} {threads}t");
                assert_eq!(
                    first.result.nodes().unwrap(),
                    naive.evaluate_window(&parsed, Some(1), 0),
                    "{corpus} {q} first @{threads}t"
                );
                assert_eq!(
                    window.result.nodes().unwrap(),
                    naive.evaluate_window(&parsed, Some(2), 1),
                    "{corpus} {q} window @{threads}t"
                );
            }
        }
    }
}

/// An `--offset` at or past the end of the full result is a legal,
/// empty window: no nodes, count 0, truncation flag clear (there is
/// nothing "more" beyond it) — on every corpus and therefore on all
/// three strategies, with and without a limit, agreeing with the naive
/// slice oracle even at `u64::MAX` (the window arithmetic must
/// saturate, not wrap).
#[test]
fn offset_past_end_is_an_empty_untruncated_window() {
    for (corpus, index) in corpora() {
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        for query in corpus_queries(corpus) {
            let parsed = parse_query(query).unwrap();
            let prepared = index.prepare(query).unwrap();
            let full = prepared.run(index, &QueryOptions::count()).count();
            for offset in [full, full + 1, full + 1_000, u64::MAX] {
                for limit in [None, Some(0), Some(1), Some(5)] {
                    let mut options = QueryOptions::nodes().with_offset(offset);
                    options.limit = limit;
                    let window = prepared.run(index, &options);
                    let expected = naive.evaluate_window(&parsed, limit, offset);
                    assert!(
                        expected.is_empty(),
                        "oracle slice past the end must be empty ({corpus} {query})"
                    );
                    assert_eq!(
                        window.nodes().unwrap(),
                        &[] as &[_],
                        "{corpus} {query} offset {offset} limit {limit:?} nodes"
                    );
                    assert!(
                        !window.truncated(),
                        "{corpus} {query} offset {offset} limit {limit:?} must not be truncated"
                    );
                    let mut count_options = QueryOptions::count().with_offset(offset);
                    count_options.limit = limit;
                    let counted = prepared.run(index, &count_options);
                    assert_eq!(
                        counted.count(),
                        0,
                        "{corpus} {query} offset {offset} limit {limit:?} count"
                    );
                    assert!(
                        !counted.truncated(),
                        "{corpus} {query} offset {offset} limit {limit:?} count truncation"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Random windows against the naive slice oracle, on the XMark corpus
    /// (every strategy appears in its query list).
    #[test]
    fn random_windows_match_the_oracle(limit in 0u64..9, offset in 0u64..9, pick in 0usize..12) {
        let (_, index) = &corpora()[0];
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        let queries = corpus_queries("xmark");
        let query = queries[pick % queries.len()];
        let parsed = parse_query(query).unwrap();
        let expected = naive.evaluate_window(&parsed, Some(limit), offset);
        let window = index
            .run(query, &QueryOptions::nodes().with_limit(limit).with_offset(offset))
            .unwrap();
        prop_assert_eq!(window.nodes().unwrap(), &expected[..]);
        let counted = index
            .run(query, &QueryOptions::count().with_limit(limit).with_offset(offset))
            .unwrap();
        prop_assert_eq!(counted.count(), expected.len() as u64);
    }
}
