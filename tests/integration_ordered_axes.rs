//! Oracle suite for the reverse/ordered axes and positional predicates:
//! on all four corpora, the indexed engine (whatever strategy the planner
//! picks — forward rewrite or direct ordered evaluation) must select
//! exactly the nodes the naive baseline evaluator selects, both
//! sequentially and through the parallel `BatchExecutor`.

use sxsi::{SxsiIndex, Strategy};
use sxsi_baseline::{NaiveEvaluator, StreamingCounter};
use sxsi_datagen::{
    medline, treebank, wiki, xmark, MedlineConfig, TreebankConfig, WikiConfig, XMarkConfig,
};
use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
use sxsi_xpath::{parse_query, ORDERED_QUERIES};

/// Corpus-independent queries stressing every new construct, run on every
/// corpus (they use wildcard/node tests, so they are meaningful anywhere).
const GENERIC_ORDERED_QUERIES: &[&str] = &[
    "//*/..",
    "//*[2]",
    "//*[last()]",
    "//*[position() <= 2]/*[1]",
    "//*/parent::*",
    "//*/ancestor::*[1]",
    "//*/ancestor-or-self::*[last()]",
    "//*/preceding-sibling::*[1]",
    "//*[1]/following::*[position() <= 3]",
    "//text()/..",
    "//@*/..",
    "//@*/following::*[position() <= 2]",
    "//@*/preceding::*[1]",
    "//@*/following::text()", // union fast path from attribute contexts
    "//*[ *[2] ]",
    "//*[ following-sibling::* and position() != 1 ]",
    "//*[not(preceding-sibling::*)]",
    "//*/self::*[1]",
    "//*/descendant-or-self::*[2]",
];

fn corpora() -> Vec<(&'static str, String)> {
    vec![
        ("xmark", xmark::generate(&XMarkConfig { scale: 0.03, seed: 11 })),
        ("treebank", treebank::generate(&TreebankConfig { num_sentences: 60, seed: 11 })),
        ("medline", medline::generate(&MedlineConfig { num_citations: 40, seed: 11 })),
        ("wiki", wiki::generate(&WikiConfig { num_pages: 40, seed: 11 })),
    ]
}

/// The indexed engine agrees with the naive evaluator on every ordered
/// query of the benchmark set, on its own corpus.
#[test]
fn ordered_queries_match_naive_on_their_corpus() {
    for (corpus, xml) in corpora() {
        let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        for q in ORDERED_QUERIES.iter().filter(|q| q.corpus == corpus) {
            let parsed = parse_query(q.xpath).unwrap();
            let expected = naive.evaluate(&parsed);
            assert!(!expected.is_empty(), "{} selects nothing on {corpus}; weak benchmark query", q.id);
            assert_eq!(index.materialize(q.xpath).unwrap(), expected, "{} on {corpus}", q.id);
            assert_eq!(index.count(q.xpath).unwrap() as usize, expected.len(), "{} count", q.id);
        }
    }
}

/// Generic reverse/positional queries agree with the oracle on all four
/// corpora, sequentially and through the batch executor at several pool
/// sizes.
#[test]
fn generic_ordered_queries_match_naive_everywhere() {
    for (corpus, xml) in corpora() {
        let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        let specs: Vec<QuerySpec> = GENERIC_ORDERED_QUERIES
            .iter()
            .map(|q| QuerySpec::nodes(*q, *q))
            .collect();
        let batch = QueryBatch::compile(&index, specs).expect("batch compiles");
        for threads in [1, 4] {
            let results = BatchExecutor::new(threads).run(&index, &batch);
            for (query, result) in GENERIC_ORDERED_QUERIES.iter().zip(&results) {
                let parsed = parse_query(query).unwrap();
                let expected = naive.evaluate(&parsed);
                assert_eq!(
                    result.result.nodes().unwrap(),
                    expected,
                    "{query} on {corpus} with {threads} threads"
                );
            }
        }
    }
}

/// The planner rewrites what it can prove forward and sends the rest to
/// the direct strategy — never to a wrong automaton.
#[test]
fn planner_routes_ordered_queries() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.02, seed: 3 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    // Rewritable: leading descendant + ancestor/parent.
    for q in ["//keyword/ancestor::item", "//keyword/parent::text", "//name/.."] {
        let parsed = index.parse(q).unwrap();
        assert_eq!(index.plan(&parsed), Strategy::TopDown, "{q}");
    }
    // Not rewritable: ordered axes, positional predicates.
    for q in ["//date/preceding-sibling::*", "//person[2]", "//africa/following::item"] {
        let parsed = index.parse(q).unwrap();
        assert_eq!(index.plan(&parsed), Strategy::Direct, "{q}");
    }
    // Both routes agree with each other through the public API.
    let naive = NaiveEvaluator::new(index.tree(), index.texts());
    for q in ["//keyword/ancestor::item", "//date/preceding-sibling::*"] {
        let parsed = parse_query(q).unwrap();
        assert_eq!(index.materialize(q).unwrap(), naive.evaluate(&parsed), "{q}");
    }
}

/// The single-pass streaming counters corroborate parent and positional
/// counts on XMark (a third, index-free implementation).
#[test]
fn streaming_counters_corroborate_reverse_and_positional_counts() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.03, seed: 7 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    for (parent, child) in [("listitem", "keyword"), ("item", "name"), ("person", "phone")] {
        let streamed = StreamingCounter::count_parent_of(xml.as_bytes(), parent, child).unwrap();
        let query = format!("//{child}/parent::{parent}");
        assert_eq!(index.count(&query).unwrap() as usize, streamed, "{query}");
    }
    for (tag, n) in [("item", 1), ("item", 2), ("person", 3), ("keyword", 1)] {
        let streamed = StreamingCounter::count_nth_child(xml.as_bytes(), tag, n).unwrap();
        let query = format!("//*/{tag}[{n}]");
        assert_eq!(index.count(&query).unwrap() as usize, streamed, "{query}");
    }
}
