//! Cross-engine equivalence on a grid of corpora, seeds and generic queries:
//! the SXSI automaton engine, the bottom-up strategy and the naive evaluator
//! must always select the same nodes.

use sxsi::{SxsiIndex, SxsiOptions};
use sxsi_baseline::{NaiveEvaluator, StreamingCounter};
use sxsi_datagen::{bio, medline, xmark, BioConfig, MedlineConfig, XMarkConfig};
use sxsi_xpath::parse_query;

const GENERIC_QUERIES: &[&str] = &[
    "//*",
    "//*//*",
    "/descendant::text()",
    "/descendant::*/attribute::*",
    "//name",
    "//person[address]/name",
    "//person[not(address)]",
    "//item[ .//keyword ]",
    r#"//person[ @id = "person3" ]"#,
    r#"//item[ .//keyword[ contains(., "the") ] ]"#,
];

#[test]
fn engines_agree_on_xmark_like_documents() {
    for seed in [1u64, 2, 3] {
        let xml = xmark::generate(&XMarkConfig { scale: 0.04, seed });
        let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        for query in GENERIC_QUERIES {
            let parsed = parse_query(query).unwrap();
            assert_eq!(
                index.materialize(query).unwrap(),
                naive.evaluate(&parsed),
                "query {query} seed {seed}"
            );
        }
    }
}

#[test]
fn engines_agree_on_other_corpora() {
    let medline_xml = medline::generate(&MedlineConfig { num_citations: 60, seed: 4 });
    let bio_xml = bio::generate(&BioConfig { num_genes: 20, seed: 4 });
    let queries = [
        "//*",
        "//Article//LastName",
        r#"//Author[ ./LastName[ starts-with(., "B") ] ]"#,
        "//gene/transcript/exon",
        r#"//gene[ ./biotype[ . = "protein_coding" ] ]/name"#,
    ];
    for xml in [medline_xml, bio_xml] {
        let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        for query in queries {
            let parsed = parse_query(query).unwrap();
            assert_eq!(index.materialize(query).unwrap(), naive.evaluate(&parsed), "query {query}");
        }
    }
}

#[test]
fn streaming_counter_matches_indexed_counts() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.05, seed: 5 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    for (query, path) in [
        ("//keyword", vec!["keyword"]),
        ("//listitem//keyword", vec!["listitem", "keyword"]),
        ("//site//person", vec!["site", "person"]),
    ] {
        let streamed = StreamingCounter::count_descendant_path(xml.as_bytes(), &path).unwrap();
        assert_eq!(index.count(query).unwrap() as usize, streamed, "query {query}");
    }
}

#[test]
fn force_top_down_matches_default_planner() {
    let xml = medline::generate(&MedlineConfig { num_citations: 50, seed: 10 });
    let default = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let forced = SxsiIndex::build_from_xml_with_options(
        xml.as_bytes(),
        SxsiOptions { force_top_down: true, ..Default::default() },
    )
    .expect("builds");
    for query in [
        r#"//Article[ .//AbstractText[ contains(., "plus") ] ]"#,
        r#"//Author[ ./LastName[ starts-with(., "Bar") ] ]"#,
        r#"//MedlineCitation[ .//Country[ contains(., "AUSTRALIA") ] ]"#,
    ] {
        assert_eq!(default.materialize(query).unwrap(), forced.materialize(query).unwrap(), "{query}");
    }
}
