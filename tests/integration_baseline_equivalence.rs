//! Cross-engine equivalence on a grid of corpora, seeds and generic queries:
//! the SXSI automaton engine, the bottom-up strategy and the naive evaluator
//! must always select the same nodes — and, since PR 7, the old (classic
//! rank / pointer wavelet tree) and new (interleaved rank / wavelet matrix)
//! succinct primitives must answer every benchmark query byte-identically.

use std::collections::HashSet;

use sxsi::{Strategy, SuccinctOptions, SxsiIndex, SxsiOptions};
use sxsi_baseline::{NaiveEvaluator, StreamingCounter};
use sxsi_datagen::{bio, medline, treebank, wiki, xmark};
use sxsi_datagen::{BioConfig, MedlineConfig, TreebankConfig, WikiConfig, XMarkConfig};
use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
use sxsi_xpath::parse_query;
use sxsi_xpath::{
    MEDLINE_QUERIES, ORDERED_QUERIES, TREEBANK_QUERIES, WORD_QUERIES, XMARK_QUERIES,
};

const GENERIC_QUERIES: &[&str] = &[
    "//*",
    "//*//*",
    "/descendant::text()",
    "/descendant::*/attribute::*",
    "//name",
    "//person[address]/name",
    "//person[not(address)]",
    "//item[ .//keyword ]",
    r#"//person[ @id = "person3" ]"#,
    r#"//item[ .//keyword[ contains(., "the") ] ]"#,
];

#[test]
fn engines_agree_on_xmark_like_documents() {
    for seed in [1u64, 2, 3] {
        let xml = xmark::generate(&XMarkConfig { scale: 0.04, seed });
        let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        for query in GENERIC_QUERIES {
            let parsed = parse_query(query).unwrap();
            assert_eq!(
                index.materialize(query).unwrap(),
                naive.evaluate(&parsed),
                "query {query} seed {seed}"
            );
        }
    }
}

#[test]
fn engines_agree_on_other_corpora() {
    let medline_xml = medline::generate(&MedlineConfig { num_citations: 60, seed: 4 });
    let bio_xml = bio::generate(&BioConfig { num_genes: 20, seed: 4 });
    let queries = [
        "//*",
        "//Article//LastName",
        r#"//Author[ ./LastName[ starts-with(., "B") ] ]"#,
        "//gene/transcript/exon",
        r#"//gene[ ./biotype[ . = "protein_coding" ] ]/name"#,
    ];
    for xml in [medline_xml, bio_xml] {
        let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        for query in queries {
            let parsed = parse_query(query).unwrap();
            assert_eq!(index.materialize(query).unwrap(), naive.evaluate(&parsed), "query {query}");
        }
    }
}

#[test]
fn streaming_counter_matches_indexed_counts() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.05, seed: 5 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    for (query, path) in [
        ("//keyword", vec!["keyword"]),
        ("//listitem//keyword", vec!["listitem", "keyword"]),
        ("//site//person", vec!["site", "person"]),
    ] {
        let streamed = StreamingCounter::count_descendant_path(xml.as_bytes(), &path).unwrap();
        assert_eq!(index.count(query).unwrap() as usize, streamed, "query {query}");
    }
}

/// The benchmark queries that target `corpus`: its paper set plus its
/// O01–O20 ordered/reverse-axis queries, as `(id, xpath)` pairs.
fn corpus_queries(corpus: &str) -> Vec<(String, String)> {
    let paper: &[sxsi_xpath::NamedQuery] = match corpus {
        "xmark" => XMARK_QUERIES,
        "treebank" => TREEBANK_QUERIES,
        "medline" => MEDLINE_QUERIES,
        "wiki" => &[],
        other => panic!("unknown corpus {other}"),
    };
    let words: &[sxsi_xpath::NamedQuery] = match corpus {
        // The word queries W01–W05 run on medline, W06–W10 on wiki.
        "medline" => &WORD_QUERIES[..5],
        "wiki" => &WORD_QUERIES[5..],
        _ => &[],
    };
    paper
        .iter()
        .chain(words)
        .map(|q| (q.id.to_string(), q.xpath.to_string()))
        .chain(
            ORDERED_QUERIES
                .iter()
                .filter(|q| q.corpus == corpus)
                .map(|q| (q.id.to_string(), q.xpath.to_string())),
        )
        .collect()
}

/// Every benchmark query must produce byte-identical output on an index
/// built with the classic primitives and one built with the PR 7
/// interleaved-rank / wavelet-matrix primitives: same counts, same node
/// sets, same serialized XML, same strategy choice — sequentially and
/// through the parallel [`BatchExecutor`].
#[test]
fn old_and_new_succinct_primitives_answer_identically() {
    let corpora = [
        ("xmark", xmark::generate(&XMarkConfig { scale: 0.05, seed: 21 })),
        ("treebank", treebank::generate(&TreebankConfig { num_sentences: 200, seed: 21 })),
        ("medline", medline::generate(&MedlineConfig { num_citations: 120, seed: 21 })),
        ("wiki", wiki::generate(&WikiConfig { num_pages: 80, seed: 21 })),
    ];
    let mut strategies_seen = HashSet::new();
    for (corpus, xml) in corpora {
        let classic = SxsiIndex::build_from_xml_with_options(
            xml.as_bytes(),
            SxsiOptions { succinct: SuccinctOptions::classic(), ..Default::default() },
        )
        .expect("classic index builds");
        let modern = SxsiIndex::build_from_xml(xml.as_bytes()).expect("default index builds");
        assert_eq!(modern.options().succinct, SuccinctOptions::default());

        let queries = corpus_queries(corpus);
        assert!(!queries.is_empty(), "{corpus} has no benchmark queries");
        for (id, xpath) in &queries {
            let stmt_classic = classic.prepare(xpath).expect("prepares on classic");
            let stmt_modern = modern.prepare(xpath).expect("prepares on modern");
            assert_eq!(
                stmt_classic.strategy(),
                stmt_modern.strategy(),
                "{corpus} {id} strategy diverged across primitive variants"
            );
            strategies_seen.insert(stmt_modern.strategy());
            assert_eq!(
                classic.count(xpath).unwrap(),
                modern.count(xpath).unwrap(),
                "{corpus} {id} count diverged across primitive variants"
            );
            assert_eq!(
                classic.materialize(xpath).unwrap(),
                modern.materialize(xpath).unwrap(),
                "{corpus} {id} node set diverged across primitive variants"
            );
            // Serialization reads texts back through the FM-index: the
            // output must be byte-identical too.
            assert_eq!(
                classic.serialize(xpath).unwrap(),
                modern.serialize(xpath).unwrap(),
                "{corpus} {id} serialized output diverged across primitive variants"
            );
        }

        // The parallel executor agrees with itself across variants.
        let specs: Vec<QuerySpec> = queries
            .iter()
            .flat_map(|(id, xpath)| {
                [
                    QuerySpec::count(format!("{id}/count"), xpath),
                    QuerySpec::nodes(format!("{id}/nodes"), xpath),
                ]
            })
            .collect();
        let classic_batch =
            QueryBatch::compile(&classic, specs.clone()).expect("batch compiles on classic");
        let modern_batch =
            QueryBatch::compile(&modern, specs).expect("batch compiles on modern");
        let classic_results = BatchExecutor::new(2).run(&classic, &classic_batch);
        let modern_results = BatchExecutor::new(2).run(&modern, &modern_batch);
        for (c, m) in classic_results.iter().zip(&modern_results) {
            assert_eq!(c.id, m.id);
            assert_eq!(c.strategy, m.strategy, "{corpus} {} batch strategy diverged", c.id);
            assert_eq!(c.result.count(), m.result.count(), "{corpus} {} batch count diverged", c.id);
            assert_eq!(c.result.nodes(), m.result.nodes(), "{corpus} {} batch nodes diverged", c.id);
        }
    }
    // The query grid must have exercised every evaluation strategy, so the
    // equivalence claim covers the top-down, bottom-up and direct paths.
    for strategy in [Strategy::TopDown, Strategy::BottomUp, Strategy::Direct] {
        assert!(strategies_seen.contains(&strategy), "no query exercised {strategy:?}");
    }
}

#[test]
fn force_top_down_matches_default_planner() {
    let xml = medline::generate(&MedlineConfig { num_citations: 50, seed: 10 });
    let default = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let forced = SxsiIndex::build_from_xml_with_options(
        xml.as_bytes(),
        SxsiOptions { force_top_down: true, ..Default::default() },
    )
    .expect("builds");
    for query in [
        r#"//Article[ .//AbstractText[ contains(., "plus") ] ]"#,
        r#"//Author[ ./LastName[ starts-with(., "Bar") ] ]"#,
        r#"//MedlineCitation[ .//Country[ contains(., "AUSTRALIA") ] ]"#,
    ] {
        assert_eq!(default.materialize(query).unwrap(), forced.materialize(query).unwrap(), "{query}");
    }
}
