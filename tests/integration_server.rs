//! The `sxsi serve` daemon contract, end to end:
//!
//! * every paper query (X/T/M/W sets) and every ordered query answered
//!   through the daemon is byte-identical to the in-process rendering,
//!   sequentially and from concurrent clients;
//! * repeated queries are served from the result cache (hit counters
//!   increment, the plan cache shares compilation across output modes);
//! * hostile input — garbage hellos, non-UTF-8 payloads, truncation at
//!   every byte boundary, oversized length prefixes, malformed query
//!   escapes — yields structured error frames and never kills the
//!   daemon;
//! * `shutdown` drains connections and stops the accept loop;
//! * the `sxsi query … | head -1` pipeline exits 0 (the broken-pipe
//!   regression that motivated routing CLI output through one shared
//!   renderer and a checked `BufWriter`).

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sxsi::{QueryMode, QueryOptions, SxsiIndex};
use sxsi_datagen::{
    medline, treebank, wiki, xmark, MedlineConfig, TreebankConfig, WikiConfig, XMarkConfig,
};
use sxsi_engine::server::client::Client;
use sxsi_engine::server::protocol::{
    escape_query, read_frame, write_frame, ErrorCode, Response, MAX_RESPONSE_FRAME,
    PROTOCOL_VERSION,
};
use sxsi_engine::server::{render_batch_result, Listener, OutputKind, ServeOptions, Server};
use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
use sxsi_xpath::{
    CorpusQuery, NamedQuery, MEDLINE_QUERIES, ORDERED_QUERIES, TREEBANK_QUERIES, WORD_QUERIES,
    XMARK_QUERIES,
};

fn corpora() -> &'static Vec<(&'static str, Arc<SxsiIndex>)> {
    static CORPORA: OnceLock<Vec<(&'static str, Arc<SxsiIndex>)>> = OnceLock::new();
    CORPORA.get_or_init(|| {
        let build = |xml: &str| Arc::new(SxsiIndex::build_from_xml(xml.as_bytes()).unwrap());
        vec![
            ("xmark", build(&xmark::generate(&XMarkConfig { scale: 0.03, seed: 13 }))),
            (
                "treebank",
                build(&treebank::generate(&TreebankConfig { num_sentences: 60, seed: 13 })),
            ),
            ("medline", build(&medline::generate(&MedlineConfig { num_citations: 40, seed: 13 }))),
            ("wiki", build(&wiki::generate(&WikiConfig { num_pages: 40, seed: 13 }))),
        ]
    })
}

fn paper_queries() -> impl Iterator<Item = &'static NamedQuery> {
    XMARK_QUERIES
        .iter()
        .chain(TREEBANK_QUERIES)
        .chain(MEDLINE_QUERIES)
        .chain(WORD_QUERIES)
}

fn ordered_queries_for(corpus: &str) -> impl Iterator<Item = &'static CorpusQuery> + '_ {
    ORDERED_QUERIES.iter().filter(move |q| q.corpus == corpus)
}

/// Starts a daemon over the given indexes on an ephemeral TCP port.
/// Returns the handle (for shutdown/metrics), the address, and the
/// serve-loop thread (joined by [`stop`]).
fn start(
    indexes: Vec<(String, Arc<SxsiIndex>)>,
    options: ServeOptions,
) -> (Server, String, std::thread::JoinHandle<()>) {
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr_string();
    let server = Server::new(indexes, options).unwrap();
    let serve = server.clone();
    let handle = std::thread::spawn(move || serve.serve(listener).unwrap());
    (server, addr, handle)
}

fn start_all_corpora() -> (Server, String, std::thread::JoinHandle<()>) {
    let indexes = corpora().iter().map(|(id, idx)| (id.to_string(), Arc::clone(idx))).collect();
    start(indexes, ServeOptions { threads: 2, ..ServeOptions::default() })
}

fn stop(server: &Server, handle: std::thread::JoinHandle<()>) {
    server.shutdown();
    handle.join().unwrap();
}

/// What the in-process CLI path prints for one query, via the same
/// shared renderer the daemon uses.
fn in_process_body(index: &SxsiIndex, xpath: &str, output: OutputKind, limit: Option<u64>) -> String {
    let options = QueryOptions {
        mode: output.query_mode(),
        limit,
        offset: 0,
        collect_stats: true,
    };
    let batch = QueryBatch::compile(
        index,
        vec![QuerySpec::new(xpath, xpath, options)],
    )
    .unwrap();
    let results = BatchExecutor::new(1).run(index, &batch);
    let mut body = String::new();
    render_batch_result(index, &results[0], output, &mut body);
    body
}

#[test]
fn daemon_bodies_match_in_process_rendering_for_every_query_set() {
    let (server, addr, handle) = start_all_corpora();
    let mut client = Client::connect_tcp(&addr).unwrap();
    for (corpus, index) in corpora() {
        let queries: Vec<&str> = paper_queries()
            .map(|q| q.xpath)
            .chain(ordered_queries_for(corpus).map(|q| q.xpath))
            .collect();
        for xpath in queries {
            for output in [OutputKind::Count, OutputKind::Nodes, OutputKind::Exists] {
                let expected = in_process_body(index, xpath, output, None);
                match client.query(Some(corpus), output, None, 0, &[xpath]).unwrap() {
                    Response::Ok { body, .. } => {
                        assert_eq!(body, expected, "{corpus} {xpath} {output:?}");
                    }
                    Response::Err { code, message } => {
                        panic!("{corpus} {xpath} {output:?}: error frame {code} {message}")
                    }
                }
            }
            // Serialization can be large; spot-check a bounded window.
            let expected = in_process_body(index, xpath, OutputKind::Serialize, Some(2));
            match client.query(Some(corpus), OutputKind::Serialize, Some(2), 0, &[xpath]).unwrap()
            {
                Response::Ok { body, .. } => {
                    assert_eq!(body, expected, "{corpus} {xpath} serialize");
                }
                Response::Err { code, message } => {
                    panic!("{corpus} {xpath} serialize: error frame {code} {message}")
                }
            }
        }
    }
    stop(&server, handle);
}

#[test]
fn concurrent_clients_read_identical_bytes() {
    let (corpus, index) = &corpora()[0];
    let (server, addr, handle) = start(
        vec![(corpus.to_string(), Arc::clone(index))],
        ServeOptions { threads: 4, ..ServeOptions::default() },
    );
    let queries: Vec<&str> = paper_queries().map(|q| q.xpath).collect();
    let expected: Vec<String> = queries
        .iter()
        .map(|q| in_process_body(index, q, OutputKind::Count, None))
        .collect();
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let addr = &addr;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                // Each worker starts at a different point so cache hits
                // and misses interleave across connections.
                for i in 0..queries.len() {
                    let pick = (i + worker * 5) % queries.len();
                    match client
                        .query(None, OutputKind::Count, None, 0, &[queries[pick]])
                        .unwrap()
                    {
                        Response::Ok { body, .. } => {
                            assert_eq!(body, expected[pick], "worker {worker} {}", queries[pick]);
                        }
                        Response::Err { code, message } => {
                            panic!("worker {worker}: error frame {code} {message}")
                        }
                    }
                }
            });
        }
    });
    assert!(server.metrics().queries_served() >= (8 * queries.len()) as u64);
    stop(&server, handle);
}

/// Extracts `key=value` from a stats body.
fn stat(body: &str, key: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .unwrap_or_else(|| panic!("no {key}= in stats body:\n{body}"))
        .parse()
        .unwrap_or_else(|_| panic!("{key} is not a number"))
}

#[test]
fn repeated_queries_are_served_from_the_result_cache() {
    let (corpus, index) = &corpora()[0];
    let (server, addr, handle) =
        start(vec![(corpus.to_string(), Arc::clone(index))], ServeOptions::default());
    let mut first = Client::connect_tcp(&addr).unwrap();
    let mut second = Client::connect_tcp(&addr).unwrap();
    let xpath = "//item";
    let body_cold = match first.query(None, OutputKind::Count, None, 0, &[xpath]).unwrap() {
        Response::Ok { body, .. } => body,
        other => panic!("cold query failed: {other:?}"),
    };
    // Same query, different connection: must come from the result cache.
    let (body_warm, detail) =
        match second.query(None, OutputKind::Count, None, 0, &[xpath]).unwrap() {
            Response::Ok { body, detail } => (body, detail),
            other => panic!("warm query failed: {other:?}"),
        };
    assert_eq!(body_cold, body_warm);
    assert!(detail.contains("cache_hits=1"), "detail was '{detail}'");
    let stats = first.stats().unwrap();
    assert_eq!(stat(&stats, "result_cache_hits"), 1);
    assert_eq!(stat(&stats, "result_cache_misses"), 1);
    assert_eq!(stat(&stats, "queries_cached"), 1);
    assert_eq!(stat(&stats, "queries_executed"), 1);
    assert_eq!(server.metrics().cached_queries_served(), 1);
    // The histograms saw the one executed query.
    assert!(stats.contains("latency_us_histogram=") && !stats.contains("latency_us_histogram=-"));
    assert!(stats.contains("visited_nodes_histogram="));
    // A different output mode misses the result cache but hits the plan
    // cache: same compiled statement, new rendering.
    match first.query(None, OutputKind::Nodes, None, 0, &[xpath]).unwrap() {
        Response::Ok { .. } => {}
        other => panic!("nodes query failed: {other:?}"),
    }
    let stats = first.stats().unwrap();
    assert_eq!(stat(&stats, "plan_cache_hits"), 1);
    assert_eq!(stat(&stats, "result_cache_hits"), 1);
    stop(&server, handle);
}

#[test]
fn query_options_are_part_of_the_result_cache_key() {
    let (corpus, index) = &corpora()[0];
    let (server, addr, handle) =
        start(vec![(corpus.to_string(), Arc::clone(index))], ServeOptions::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    let xpath = "//item";
    let expected_all = in_process_body(index, xpath, OutputKind::Nodes, None);
    let expected_one = in_process_body(index, xpath, OutputKind::Nodes, Some(1));
    for _ in 0..2 {
        match client.query(None, OutputKind::Nodes, None, 0, &[xpath]).unwrap() {
            Response::Ok { body, .. } => assert_eq!(body, expected_all),
            other => panic!("{other:?}"),
        }
        match client.query(None, OutputKind::Nodes, Some(1), 0, &[xpath]).unwrap() {
            Response::Ok { body, .. } => assert_eq!(body, expected_one),
            other => panic!("{other:?}"),
        }
    }
    stop(&server, handle);
}

// ---------------------------------------------------------------------
// Raw-socket protocol robustness.
// ---------------------------------------------------------------------

fn raw_connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

fn raw_hello(stream: &mut TcpStream) {
    write_frame(stream, format!("hello {PROTOCOL_VERSION}").as_bytes()).unwrap();
    match read_response(stream) {
        Response::Ok { .. } => {}
        other => panic!("handshake failed: {other:?}"),
    }
}

fn read_response(stream: &mut TcpStream) -> Response {
    let payload = read_frame(stream, MAX_RESPONSE_FRAME).unwrap();
    Response::parse(&payload).expect("server responses always parse")
}

fn expect_error(stream: &mut TcpStream, code: ErrorCode) {
    match read_response(stream) {
        Response::Err { code: got, .. } => assert_eq!(got, code),
        other => panic!("expected error {code}, got {other:?}"),
    }
}

/// Asserts the daemon still answers a well-formed connection.
fn assert_still_serving(addr: &str) {
    let mut client = Client::connect_tcp(addr).unwrap();
    client.ping().unwrap();
}

#[test]
fn hostile_input_yields_structured_errors_and_the_daemon_survives() {
    let (corpus, index) = &corpora()[0];
    let (server, addr, handle) =
        start(vec![(corpus.to_string(), Arc::clone(index))], ServeOptions::default());

    // Wrong protocol version: structured bad-version, then close.
    let mut s = raw_connect(&addr);
    write_frame(&mut s, b"hello 999").unwrap();
    expect_error(&mut s, ErrorCode::BadVersion);
    assert_still_serving(&addr);

    // A first frame that is not a hello at all (e.g. an HTTP client).
    let mut s = raw_connect(&addr);
    write_frame(&mut s, b"GET / HTTP/1.1").unwrap();
    expect_error(&mut s, ErrorCode::BadVersion);
    assert_still_serving(&addr);

    // Non-UTF-8 payload after a good handshake: bad-frame, and the
    // connection stays usable.
    let mut s = raw_connect(&addr);
    raw_hello(&mut s);
    write_frame(&mut s, &[0xff, 0xfe, 0xfd]).unwrap();
    expect_error(&mut s, ErrorCode::BadFrame);
    write_frame(&mut s, b"ping").unwrap();
    match read_response(&mut s) {
        Response::Ok { detail, .. } => assert_eq!(detail, "pong"),
        other => panic!("connection should survive bad-frame: {other:?}"),
    }

    // Unknown command, unknown index, malformed escape, empty frame.
    write_frame(&mut s, b"frobnicate").unwrap();
    expect_error(&mut s, ErrorCode::UnknownCommand);
    write_frame(&mut s, b"query index=nope\n//a").unwrap();
    expect_error(&mut s, ErrorCode::UnknownIndex);
    write_frame(&mut s, b"query\n%zz").unwrap();
    expect_error(&mut s, ErrorCode::BadArgument);
    write_frame(&mut s, b"").unwrap();
    expect_error(&mut s, ErrorCode::BadFrame);
    // A query that parses but is not supported maps to the exit-3
    // analog; one that does not parse at all to parse-error.
    write_frame(&mut s, b"query\n//a[count(b) = 1]").unwrap();
    match read_response(&mut s) {
        Response::Err { code, .. } => {
            assert!(
                matches!(code, ErrorCode::UnsupportedQuery | ErrorCode::ParseError),
                "got {code}"
            );
        }
        other => panic!("expected a query-shape error, got {other:?}"),
    }
    write_frame(&mut s, format!("query\n{}", escape_query("///")).as_bytes()).unwrap();
    expect_error(&mut s, ErrorCode::ParseError);

    // Oversized announced length: structured error, then close.
    let mut s = raw_connect(&addr);
    raw_hello(&mut s);
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    s.flush().unwrap();
    expect_error(&mut s, ErrorCode::OversizedFrame);
    assert_still_serving(&addr);

    stop(&server, handle);
}

#[test]
fn truncation_at_every_byte_boundary_is_reported_and_survived() {
    let (corpus, index) = &corpora()[0];
    let (server, addr, handle) =
        start(vec![(corpus.to_string(), Arc::clone(index))], ServeOptions::default());
    let mut full = Vec::new();
    write_frame(&mut full, b"stats").unwrap();
    for cut in 0..full.len() {
        let mut s = raw_connect(&addr);
        raw_hello(&mut s);
        s.write_all(&full[..cut]).unwrap();
        s.flush().unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        if cut == 0 {
            // A clean close at the frame boundary earns no error frame.
            let mut rest = Vec::new();
            s.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty(), "no frame owed on a clean close");
        } else {
            expect_error(&mut s, ErrorCode::TruncatedFrame);
        }
    }
    assert_still_serving(&addr);
    stop(&server, handle);
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let (corpus, index) = &corpora()[0];
    let (server, addr, handle) =
        start(vec![(corpus.to_string(), Arc::clone(index))], ServeOptions::default());
    let mut idle = Client::connect_tcp(&addr).unwrap();
    let mut controller = Client::connect_tcp(&addr).unwrap();
    controller.shutdown().unwrap();
    // The serve loop exits once every connection has drained (the idle
    // one is closed at its next frame boundary).
    handle.join().unwrap();
    assert!(server.is_shutting_down());
    // The listener is gone: new connections are refused.
    assert!(Client::connect_tcp(&addr).is_err());
    // The drained idle connection gets a shutting-down error or EOF,
    // never a hang or a panic.
    assert!(idle.ping().is_err(), "server answered a ping after shutdown");
}

#[test]
fn duplicate_and_invalid_index_ids_are_rejected() {
    let (_, index) = &corpora()[0];
    let dup = vec![
        ("a".to_string(), Arc::clone(index)),
        ("a".to_string(), Arc::clone(index)),
    ];
    assert!(Server::new(dup, ServeOptions::default()).is_err());
    assert!(Server::new(Vec::new(), ServeOptions::default()).is_err());
    let spaced = vec![("has space".to_string(), Arc::clone(index))];
    assert!(Server::new(spaced, ServeOptions::default()).is_err());
}

// ---------------------------------------------------------------------
// CLI regressions driven through the real binary.
// ---------------------------------------------------------------------

fn built_index_file(dir: &std::path::Path) -> std::path::PathBuf {
    let xml = xmark::generate(&XMarkConfig { scale: 0.03, seed: 13 });
    let xml_path = dir.join("doc.xml");
    let idx_path = dir.join("doc.sxsi");
    std::fs::write(&xml_path, xml).unwrap();
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_sxsi"))
        .args(["build", xml_path.to_str().unwrap(), idx_path.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .status()
        .unwrap();
    assert!(status.success());
    idx_path
}

/// `sxsi query … | head -1` must exit 0: a closed downstream pipe is
/// normal usage, not a panic (`println!` aborts on EPIPE) nor an error.
#[test]
fn query_into_closed_pipe_exits_cleanly() {
    let dir = std::env::temp_dir().join(format!("sxsi-pipe-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let idx = built_index_file(&dir);

    // --serialize '//*' produces far more output than any pipe buffer
    // holds, so the child is guaranteed to hit EPIPE once we hang up.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_sxsi"))
        .args(["query", idx.to_str().unwrap(), "--serialize", "//*"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    {
        // Read one line like `head -1`, then drop the pipe.
        let stdout = child.stdout.take().unwrap();
        let mut one = [0u8; 64];
        let mut reader = std::io::BufReader::new(stdout);
        let _ = reader.read(&mut one).unwrap();
    }
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0), "broken pipe must exit 0, got {status:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The `stderr` diagnostics and exit taxonomy survive the daemon hop:
/// `exists` answers exit 4 through `client` via the `all_found` detail.
#[test]
fn client_exists_detail_reports_all_found() {
    let (corpus, index) = &corpora()[0];
    let (server, addr, handle) =
        start(vec![(corpus.to_string(), Arc::clone(index))], ServeOptions::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    match client.query(None, OutputKind::Exists, None, 0, &["//item", "//no_such_tag"]).unwrap() {
        Response::Ok { detail, body } => {
            assert!(detail.contains("all_found=false"), "detail '{detail}'");
            assert!(body.contains("//item: true\n"));
            assert!(body.contains("//no_such_tag: false\n"));
        }
        other => panic!("{other:?}"),
    }
    match client.query(None, OutputKind::Exists, None, 0, &["//item"]).unwrap() {
        Response::Ok { detail, .. } => {
            assert!(detail.contains("all_found=true"), "detail '{detail}'");
        }
        other => panic!("{other:?}"),
    }
    stop(&server, handle);
}

/// M11 carries literal newlines inside its query string; the escaping
/// layer must carry it to the daemon and back unchanged.
#[test]
fn newline_bearing_queries_roundtrip_through_the_wire() {
    let m11 = MEDLINE_QUERIES.iter().find(|q| q.id == "M11").expect("M11 exists");
    assert!(m11.xpath.contains('\n'), "M11 is the newline fixture");
    let (corpus, index) = corpora()
        .iter()
        .find(|(c, _)| *c == "medline")
        .map(|(c, i)| (*c, Arc::clone(i)))
        .unwrap();
    let (server, addr, handle) =
        start(vec![(corpus.to_string(), index.clone())], ServeOptions::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    let expected = in_process_body(&index, m11.xpath, OutputKind::Count, None);
    match client.query(None, OutputKind::Count, None, 0, &[m11.xpath]).unwrap() {
        Response::Ok { body, .. } => assert_eq!(body, expected),
        other => panic!("{other:?}"),
    }
    stop(&server, handle);
}

/// A multi-query request preserves request order and renders duplicates
/// once per occurrence, exactly like the CLI batch.
#[test]
fn multi_query_requests_preserve_order_and_duplicates() {
    let (corpus, index) = &corpora()[0];
    let (server, addr, handle) =
        start(vec![(corpus.to_string(), Arc::clone(index))], ServeOptions::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    let queries = ["//item", "//person", "//item"];
    let expected: String =
        queries.iter().map(|q| in_process_body(index, q, OutputKind::Count, None)).collect();
    match client.query(None, OutputKind::Count, None, 0, &queries).unwrap() {
        Response::Ok { body, .. } => assert_eq!(body, expected),
        other => panic!("{other:?}"),
    }
    stop(&server, handle);
}

#[test]
fn info_command_describes_every_index() {
    let (server, addr, handle) = start_all_corpora();
    let mut client = Client::connect_tcp(&addr).unwrap();
    let info = client.info().unwrap();
    assert!(info.starts_with(&format!("server protocol_version={PROTOCOL_VERSION} ")));
    for (corpus, index) in corpora() {
        let stats = index.stats();
        assert!(
            info.contains(&format!("index id={corpus} nodes={} ", stats.num_nodes)),
            "info missing {corpus}:\n{info}"
        );
    }
    // QueryMode is part of the cache key; sanity-check the wire mapping.
    assert_eq!(OutputKind::Count.query_mode(), QueryMode::Count);
    assert_eq!(OutputKind::Exists.query_mode(), QueryMode::Exists);
    stop(&server, handle);
}

/// The daemon `search` command: bodies byte-identical to the in-process
/// renderer (the same one `sxsi search` prints through), a dedicated
/// result cache that hits on repeats across connections, and structured
/// errors for malformed requests.
#[test]
fn daemon_search_bodies_match_in_process_rendering_and_cache() {
    use sxsi::{FtMode, FtQuery};
    use sxsi_engine::search::{query_display, render_search_outcome, search_index};

    let (server, addr, handle) = start_all_corpora();
    let mut client = Client::connect_tcp(&addr).unwrap();
    let cases: &[(&str, &[&str], Option<u64>)] = &[
        ("all", &["the"], None),
        ("all", &["the", "of"], Some(3)),
        ("any", &["the", "of", "zzznope"], Some(5)),
        ("phrase", &["of the"], None),
    ];
    let mut total_hits = 0usize;
    for (corpus, index) in corpora() {
        for &(mode, terms, limit) in cases {
            let query = FtQuery::new(FtMode::parse(mode).unwrap(), terms);
            let mut expected = String::new();
            render_search_outcome(
                &query_display(&query),
                &search_index(index, corpus, &query, limit.map(|l| l as usize)),
                &mut expected,
            );
            match client.search(Some(corpus), mode, limit, terms).unwrap() {
                Response::Ok { body, .. } => {
                    assert_eq!(body, expected, "{corpus} {mode} {terms:?}");
                    let hits: usize = body
                        .split(": ")
                        .nth(1)
                        .and_then(|r| r.split(' ').next())
                        .and_then(|n| n.parse().ok())
                        .unwrap_or_else(|| panic!("unparsable search body: {body}"));
                    total_hits += hits;
                }
                Response::Err { code, message } => {
                    panic!("{corpus} {mode} {terms:?}: error frame {code} {message}")
                }
            }
        }
    }
    // The shared terms are common English words, so the sweep must have
    // found something somewhere — otherwise the test is vacuous.
    assert!(total_hits > 0, "no hits across any corpus/case combination");

    // Repeats hit the dedicated search cache, from another connection too.
    let (corpus, _) = &corpora()[0];
    let mut second = Client::connect_tcp(&addr).unwrap();
    let detail = match second.search(Some(corpus), "all", None, &["the"]).unwrap() {
        Response::Ok { detail, .. } => detail,
        other => panic!("{other:?}"),
    };
    assert!(detail.contains("cache_hits=1"), "detail was '{detail}'");
    let stats = second.stats().unwrap();
    assert!(stat(&stats, "search_cache_hits") >= 1, "stats:\n{stats}");
    assert!(stat(&stats, "search_cache_misses") >= 1, "stats:\n{stats}");

    // Malformed requests come back as structured error frames.
    for payload in [
        "search mode=bogus\nterm",
        "search",
        "search index=xmark\n...", // punctuation holds no token bytes
        "search index=nosuch\nterm",
    ] {
        match second.request(payload.as_bytes()).unwrap() {
            Response::Err { code, .. } => assert!(
                matches!(code, ErrorCode::BadArgument | ErrorCode::UnknownIndex),
                "{payload}: unexpected code {code}"
            ),
            other => panic!("{payload}: expected an error frame, got {other:?}"),
        }
    }
    stop(&server, handle);
}

/// `--queries-file` hygiene: indented `#` comments and whitespace-only
/// lines are skipped, not submitted as queries (the parse would
/// otherwise fail the whole batch), and surrounding whitespace is
/// stripped off real queries.
#[test]
fn queries_file_skips_indented_comments_and_blank_lines() {
    let dir = std::env::temp_dir().join(format!("sxsi-qfile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let idx = built_index_file(&dir);
    let qfile = dir.join("batch.txt");
    std::fs::write(
        &qfile,
        "# plain comment\n  # indented comment\n\n   \n\t\n  //item  \nq1\t//person\n",
    )
    .unwrap();

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_sxsi"))
        .args(["query", idx.to_str().unwrap(), "--queries-file", qfile.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    // Exactly the two real queries survive the filter.
    assert_eq!(lines.len(), 2, "stdout: {stdout}");
    assert!(lines[0].starts_with("//item: "), "stdout: {stdout}");
    assert!(lines[1].starts_with("q1: "), "stdout: {stdout}");

    // A file holding only comments and blanks is an empty batch, and says so.
    std::fs::write(&qfile, "  # only\n\n   \n").unwrap();
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_sxsi"))
        .args(["query", idx.to_str().unwrap(), "--queries-file", qfile.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("code=empty-batch"),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
