//! Save → load → query equivalence over the paper's full query sets.
//!
//! The persistence tentpole promises that a loaded index is *the same
//! index*: for every one of the 43 paper queries (XMark X01–X17, Treebank
//! T01–T05, Medline M01–M11, word W01–W10) the counts and the materialized
//! node sets of the loaded index must be identical to the in-memory index it
//! was saved from — both through the sequential [`SxsiIndex`] API and
//! through the parallel [`BatchExecutor`] — and corrupt, truncated or
//! version-mismatched files must fail with structured errors, never panics.

use sxsi::{IoError, ReadFrom, SuccinctOptions, SxsiIndex, SxsiOptions, WriteInto};
use sxsi_datagen::{medline, treebank, wiki, xmark};
use sxsi_datagen::{MedlineConfig, TreebankConfig, WikiConfig, XMarkConfig};
use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
use sxsi_xpath::NamedQuery;
use sxsi_xpath::{MEDLINE_QUERIES, TREEBANK_QUERIES, WORD_QUERIES, XMARK_QUERIES};

/// Builds, saves to an in-memory buffer, reloads, and checks that every
/// query answers identically on both indexes.
fn assert_roundtrip_equivalence(corpus: &str, xml: &str, queries: &[NamedQuery]) {
    assert_roundtrip_equivalence_with(corpus, xml, queries, SxsiOptions::default());
}

/// [`assert_roundtrip_equivalence`] with explicit build options, so both
/// succinct backend families (classic and interleaved/wavelet-matrix) go
/// through the same save → load → query gauntlet.
fn assert_roundtrip_equivalence_with(
    corpus: &str,
    xml: &str,
    queries: &[NamedQuery],
    options: SxsiOptions,
) {
    let built =
        SxsiIndex::build_from_xml_with_options(xml.as_bytes(), options).expect("index builds");
    let bytes = built.to_bytes();
    let loaded = SxsiIndex::from_bytes(&bytes).expect("index loads");
    assert_eq!(loaded.stats(), built.stats(), "{corpus} stats diverged");

    for q in queries {
        assert_eq!(
            loaded.count(q.xpath).unwrap(),
            built.count(q.xpath).unwrap(),
            "{corpus} {} count diverged after reload",
            q.id
        );
        assert_eq!(
            loaded.materialize(q.xpath).unwrap(),
            built.materialize(q.xpath).unwrap(),
            "{corpus} {} node set diverged after reload",
            q.id
        );
    }

    // The parallel batch executor must work against the loaded index too:
    // compile the batch against it and compare with the built index.
    let specs: Vec<QuerySpec> = queries
        .iter()
        .flat_map(|q| {
            [
                QuerySpec::count(format!("{}/count", q.id), q.xpath),
                QuerySpec::nodes(format!("{}/nodes", q.id), q.xpath),
            ]
        })
        .collect();
    let batch = QueryBatch::compile(&loaded, specs.clone()).expect("batch compiles on loaded index");
    let reference_batch = QueryBatch::compile(&built, specs).expect("batch compiles on built index");
    let results = BatchExecutor::new(2).run(&loaded, &batch);
    let reference = BatchExecutor::new(1).run(&built, &reference_batch);
    for (r, expected) in results.iter().zip(&reference) {
        assert_eq!(r.id, expected.id);
        assert_eq!(r.strategy, expected.strategy, "{corpus} {} strategy diverged", r.id);
        assert_eq!(r.result.count(), expected.result.count(), "{corpus} {} batch count diverged", r.id);
        assert_eq!(r.result.nodes(), expected.result.nodes(), "{corpus} {} batch output diverged", r.id);
    }
}

#[test]
fn xmark_queries_survive_reload() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.08, seed: 11 });
    assert_roundtrip_equivalence("xmark", &xml, XMARK_QUERIES);
}

#[test]
fn treebank_queries_survive_reload() {
    let xml = treebank::generate(&TreebankConfig { num_sentences: 300, seed: 11 });
    assert_roundtrip_equivalence("treebank", &xml, TREEBANK_QUERIES);
}

#[test]
fn medline_queries_survive_reload() {
    let xml = medline::generate(&MedlineConfig { num_citations: 150, seed: 11 });
    assert_roundtrip_equivalence("medline", &xml, MEDLINE_QUERIES);
    assert_roundtrip_equivalence("medline", &xml, &WORD_QUERIES[..5]);
}

#[test]
fn wiki_word_queries_survive_reload() {
    let xml = wiki::generate(&WikiConfig { num_pages: 100, seed: 11 });
    assert_roundtrip_equivalence("wiki", &xml, &WORD_QUERIES[5..]);
}

#[test]
fn classic_backends_survive_reload() {
    // The pre-PR7 structures stay a first-class citizen of the container
    // format: an index built on classic rank bitmaps and pointer wavelet
    // trees must reload and answer identically.
    let xml = xmark::generate(&XMarkConfig { scale: 0.04, seed: 11 });
    let options = SxsiOptions { succinct: SuccinctOptions::classic(), ..Default::default() };
    assert_roundtrip_equivalence_with("xmark-classic", &xml, XMARK_QUERIES, options);
}

#[test]
fn reloaded_backend_choice_is_preserved() {
    // The backend tags travel with the container: a classic index reloads
    // classic, a default index reloads interleaved/matrix, and both answer
    // the same counts.
    let xml = xmark::generate(&XMarkConfig { scale: 0.01, seed: 7 });
    let classic = SxsiIndex::build_from_xml_with_options(
        xml.as_bytes(),
        SxsiOptions { succinct: SuccinctOptions::classic(), ..Default::default() },
    )
    .expect("classic index builds");
    let modern = SxsiIndex::build_from_xml(xml.as_bytes()).expect("default index builds");
    let classic_loaded = SxsiIndex::from_bytes(&classic.to_bytes()).expect("classic loads");
    let modern_loaded = SxsiIndex::from_bytes(&modern.to_bytes()).expect("default loads");
    assert_eq!(classic_loaded.options().succinct, SuccinctOptions::classic());
    assert_eq!(modern_loaded.options().succinct, SuccinctOptions::default());
    for q in &XMARK_QUERIES[..8] {
        let expected = modern.count(q.xpath).unwrap();
        assert_eq!(classic_loaded.count(q.xpath).unwrap(), expected, "{}", q.id);
        assert_eq!(modern_loaded.count(q.xpath).unwrap(), expected, "{}", q.id);
    }
}

#[test]
fn file_roundtrip_through_the_filesystem() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.02, seed: 3 });
    let built = SxsiIndex::build_from_xml(xml.as_bytes()).expect("index builds");
    let path = std::env::temp_dir().join(format!("sxsi-test-{}.sxsi", std::process::id()));
    built.save_to_file(&path).expect("index saves");
    let loaded = SxsiIndex::load_from_file(&path).expect("index loads");
    std::fs::remove_file(&path).ok();
    for q in XMARK_QUERIES {
        assert_eq!(loaded.count(q.xpath).unwrap(), built.count(q.xpath).unwrap(), "{}", q.id);
    }
}

#[test]
fn options_survive_reload() {
    use sxsi::SxsiOptions;
    let xml = xmark::generate(&XMarkConfig { scale: 0.01, seed: 5 });
    let mut options = SxsiOptions::default();
    options.text.keep_plain_text = false;
    options.text.sample_rate = 8;
    options.force_top_down = true;
    let built =
        SxsiIndex::build_from_xml_with_options(xml.as_bytes(), options).expect("index builds");
    let loaded = SxsiIndex::from_bytes(&built.to_bytes()).expect("index loads");
    assert!(!loaded.options().text.keep_plain_text);
    assert_eq!(loaded.options().text.sample_rate, 8);
    assert!(loaded.options().force_top_down);
    assert!(loaded.texts().plain().is_none());
    for q in &XMARK_QUERIES[..6] {
        assert_eq!(loaded.count(q.xpath).unwrap(), built.count(q.xpath).unwrap(), "{}", q.id);
    }
}

#[test]
fn corrupt_truncated_and_mismatched_files_error_structurally() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.01, seed: 9 });
    let built = SxsiIndex::build_from_xml(xml.as_bytes()).expect("index builds");
    let bytes = built.to_bytes();

    // Wrong magic.
    let mut bad_magic = bytes.clone();
    bad_magic[3] = b'?';
    assert!(matches!(SxsiIndex::from_bytes(&bad_magic), Err(IoError::BadMagic { .. })));

    // Future format version.
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        SxsiIndex::from_bytes(&future),
        Err(IoError::UnsupportedVersion { found: 99, .. })
    ));

    // The superseded version-1 layout is also rejected up front.
    let mut outdated = bytes.clone();
    outdated[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        SxsiIndex::from_bytes(&outdated),
        Err(IoError::UnsupportedVersion { found: 1, .. })
    ));

    // Truncation at a spread of byte positions (header, each section, tail).
    for fraction in [0usize, 5, 11, 13, 40, 70, 95, 99] {
        let cut = bytes.len() * fraction / 100;
        assert!(SxsiIndex::from_bytes(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
    }

    // Single-byte corruption at a spread of positions: structured error,
    // never a panic, never a silently-loaded index.
    for fraction in [2usize, 10, 20, 35, 50, 65, 80, 97] {
        let pos = 12 + (bytes.len() - 13) * fraction / 100;
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x10;
        assert!(SxsiIndex::from_bytes(&corrupted).is_err(), "corruption at byte {pos} accepted");
    }

    // An empty and a garbage file.
    assert!(SxsiIndex::from_bytes(&[]).is_err());
    assert!(SxsiIndex::from_bytes(&[0u8; 64]).is_err());
    // The pristine bytes still load (the checks above cloned).
    assert!(SxsiIndex::from_bytes(&bytes).is_ok());
}
