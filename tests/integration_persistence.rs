//! Save → load → query equivalence over the paper's full query sets.
//!
//! The persistence tentpole promises that a loaded index is *the same
//! index*: for every one of the 43 paper queries (XMark X01–X17, Treebank
//! T01–T05, Medline M01–M11, word W01–W10) the counts and the materialized
//! node sets of the loaded index must be identical to the in-memory index it
//! was saved from — both through the sequential [`SxsiIndex`] API and
//! through the parallel [`BatchExecutor`] — and corrupt, truncated or
//! version-mismatched files must fail with structured errors, never panics.

use sxsi::{IoError, ReadFrom, SuccinctOptions, SxsiIndex, SxsiOptions, WriteInto};
use sxsi_datagen::{medline, treebank, wiki, xmark};
use sxsi_datagen::{MedlineConfig, TreebankConfig, WikiConfig, XMarkConfig};
use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
use sxsi_xpath::NamedQuery;
use sxsi_xpath::{MEDLINE_QUERIES, TREEBANK_QUERIES, WORD_QUERIES, XMARK_QUERIES};

/// Builds, saves to an in-memory buffer, reloads, and checks that every
/// query answers identically on both indexes.
fn assert_roundtrip_equivalence(corpus: &str, xml: &str, queries: &[NamedQuery]) {
    assert_roundtrip_equivalence_with(corpus, xml, queries, SxsiOptions::default());
}

/// [`assert_roundtrip_equivalence`] with explicit build options, so both
/// succinct backend families (classic and interleaved/wavelet-matrix) go
/// through the same save → load → query gauntlet.
fn assert_roundtrip_equivalence_with(
    corpus: &str,
    xml: &str,
    queries: &[NamedQuery],
    options: SxsiOptions,
) {
    let built =
        SxsiIndex::build_from_xml_with_options(xml.as_bytes(), options).expect("index builds");
    let bytes = built.to_bytes();
    let loaded = SxsiIndex::from_bytes(&bytes).expect("index loads");
    assert_eq!(loaded.stats(), built.stats(), "{corpus} stats diverged");

    for q in queries {
        assert_eq!(
            loaded.count(q.xpath).unwrap(),
            built.count(q.xpath).unwrap(),
            "{corpus} {} count diverged after reload",
            q.id
        );
        assert_eq!(
            loaded.materialize(q.xpath).unwrap(),
            built.materialize(q.xpath).unwrap(),
            "{corpus} {} node set diverged after reload",
            q.id
        );
    }

    // The parallel batch executor must work against the loaded index too:
    // compile the batch against it and compare with the built index.
    let specs: Vec<QuerySpec> = queries
        .iter()
        .flat_map(|q| {
            [
                QuerySpec::count(format!("{}/count", q.id), q.xpath),
                QuerySpec::nodes(format!("{}/nodes", q.id), q.xpath),
            ]
        })
        .collect();
    let batch = QueryBatch::compile(&loaded, specs.clone()).expect("batch compiles on loaded index");
    let reference_batch = QueryBatch::compile(&built, specs).expect("batch compiles on built index");
    let results = BatchExecutor::new(2).run(&loaded, &batch);
    let reference = BatchExecutor::new(1).run(&built, &reference_batch);
    for (r, expected) in results.iter().zip(&reference) {
        assert_eq!(r.id, expected.id);
        assert_eq!(r.strategy, expected.strategy, "{corpus} {} strategy diverged", r.id);
        assert_eq!(r.result.count(), expected.result.count(), "{corpus} {} batch count diverged", r.id);
        assert_eq!(r.result.nodes(), expected.result.nodes(), "{corpus} {} batch output diverged", r.id);
    }
}

#[test]
fn xmark_queries_survive_reload() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.08, seed: 11 });
    assert_roundtrip_equivalence("xmark", &xml, XMARK_QUERIES);
}

#[test]
fn treebank_queries_survive_reload() {
    let xml = treebank::generate(&TreebankConfig { num_sentences: 300, seed: 11 });
    assert_roundtrip_equivalence("treebank", &xml, TREEBANK_QUERIES);
}

#[test]
fn medline_queries_survive_reload() {
    let xml = medline::generate(&MedlineConfig { num_citations: 150, seed: 11 });
    assert_roundtrip_equivalence("medline", &xml, MEDLINE_QUERIES);
    assert_roundtrip_equivalence("medline", &xml, &WORD_QUERIES[..5]);
}

#[test]
fn wiki_word_queries_survive_reload() {
    let xml = wiki::generate(&WikiConfig { num_pages: 100, seed: 11 });
    assert_roundtrip_equivalence("wiki", &xml, &WORD_QUERIES[5..]);
}

#[test]
fn classic_backends_survive_reload() {
    // The pre-PR7 structures stay a first-class citizen of the container
    // format: an index built on classic rank bitmaps and pointer wavelet
    // trees must reload and answer identically.
    let xml = xmark::generate(&XMarkConfig { scale: 0.04, seed: 11 });
    let options = SxsiOptions { succinct: SuccinctOptions::classic(), ..Default::default() };
    assert_roundtrip_equivalence_with("xmark-classic", &xml, XMARK_QUERIES, options);
}

#[test]
fn reloaded_backend_choice_is_preserved() {
    // The backend tags travel with the container: a classic index reloads
    // classic, a default index reloads interleaved/matrix, and both answer
    // the same counts.
    let xml = xmark::generate(&XMarkConfig { scale: 0.01, seed: 7 });
    let classic = SxsiIndex::build_from_xml_with_options(
        xml.as_bytes(),
        SxsiOptions { succinct: SuccinctOptions::classic(), ..Default::default() },
    )
    .expect("classic index builds");
    let modern = SxsiIndex::build_from_xml(xml.as_bytes()).expect("default index builds");
    let classic_loaded = SxsiIndex::from_bytes(&classic.to_bytes()).expect("classic loads");
    let modern_loaded = SxsiIndex::from_bytes(&modern.to_bytes()).expect("default loads");
    assert_eq!(classic_loaded.options().succinct, SuccinctOptions::classic());
    assert_eq!(modern_loaded.options().succinct, SuccinctOptions::default());
    for q in &XMARK_QUERIES[..8] {
        let expected = modern.count(q.xpath).unwrap();
        assert_eq!(classic_loaded.count(q.xpath).unwrap(), expected, "{}", q.id);
        assert_eq!(modern_loaded.count(q.xpath).unwrap(), expected, "{}", q.id);
    }
}

#[test]
fn file_roundtrip_through_the_filesystem() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.02, seed: 3 });
    let built = SxsiIndex::build_from_xml(xml.as_bytes()).expect("index builds");
    let path = std::env::temp_dir().join(format!("sxsi-test-{}.sxsi", std::process::id()));
    built.save_to_file(&path).expect("index saves");
    let loaded = SxsiIndex::load_from_file(&path).expect("index loads");
    std::fs::remove_file(&path).ok();
    for q in XMARK_QUERIES {
        assert_eq!(loaded.count(q.xpath).unwrap(), built.count(q.xpath).unwrap(), "{}", q.id);
    }
}

#[test]
fn options_survive_reload() {
    use sxsi::SxsiOptions;
    let xml = xmark::generate(&XMarkConfig { scale: 0.01, seed: 5 });
    let mut options = SxsiOptions::default();
    options.text.keep_plain_text = false;
    options.text.sample_rate = 8;
    options.force_top_down = true;
    let built =
        SxsiIndex::build_from_xml_with_options(xml.as_bytes(), options).expect("index builds");
    let loaded = SxsiIndex::from_bytes(&built.to_bytes()).expect("index loads");
    assert!(!loaded.options().text.keep_plain_text);
    assert_eq!(loaded.options().text.sample_rate, 8);
    assert!(loaded.options().force_top_down);
    assert!(loaded.texts().plain().is_none());
    for q in &XMARK_QUERIES[..6] {
        assert_eq!(loaded.count(q.xpath).unwrap(), built.count(q.xpath).unwrap(), "{}", q.id);
    }
}

#[test]
fn corrupt_truncated_and_mismatched_files_error_structurally() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.01, seed: 9 });
    let built = SxsiIndex::build_from_xml(xml.as_bytes()).expect("index builds");
    let bytes = built.to_bytes();

    // Wrong magic.
    let mut bad_magic = bytes.clone();
    bad_magic[3] = b'?';
    assert!(matches!(SxsiIndex::from_bytes(&bad_magic), Err(IoError::BadMagic { .. })));

    // Future format version.
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        SxsiIndex::from_bytes(&future),
        Err(IoError::UnsupportedVersion { found: 99, .. })
    ));

    // The superseded version-1 layout is also rejected up front.
    let mut outdated = bytes.clone();
    outdated[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        SxsiIndex::from_bytes(&outdated),
        Err(IoError::UnsupportedVersion { found: 1, .. })
    ));

    // Truncation at a spread of byte positions (header, each section, tail).
    for fraction in [0usize, 5, 11, 13, 40, 70, 95, 99] {
        let cut = bytes.len() * fraction / 100;
        assert!(SxsiIndex::from_bytes(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
    }

    // Single-byte corruption at a spread of positions: structured error,
    // never a panic, never a silently-loaded index.
    for fraction in [2usize, 10, 20, 35, 50, 65, 80, 97] {
        let pos = 12 + (bytes.len() - 13) * fraction / 100;
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x10;
        assert!(SxsiIndex::from_bytes(&corrupted).is_err(), "corruption at byte {pos} accepted");
    }

    // An empty and a garbage file.
    assert!(SxsiIndex::from_bytes(&[]).is_err());
    assert!(SxsiIndex::from_bytes(&[0u8; 64]).is_err());
    // The pristine bytes still load (the checks above cloned).
    assert!(SxsiIndex::from_bytes(&bytes).is_ok());
}

// ---------------------------------------------------------------------------
// Semantic corruption: checksum-valid containers whose sections are
// individually well-formed but no longer describe the same document.
// Checksums catch bit rot; these mutations model software bugs (a writer
// that saved mismatched sections), which only `SxsiIndex::verify` can see.
// ---------------------------------------------------------------------------

/// Section tags of the v2 container layout (mirrors the writer in
/// `sxsi::io`; the parser below asserts the names so drift is caught).
const TAG_OPTIONS: u8 = 1;
const TAG_TREE: u8 = 2;
const TAG_TEXTS: u8 = 3;
const TAG_META: u8 = 4;

/// A `.sxsi` container split into mutable section payloads, re-framed
/// with freshly computed checksums — so every mutation below reaches the
/// semantic verifier instead of being caught by the checksum layer.
struct Container {
    sections: Vec<(u8, Vec<u8>)>,
}

impl Container {
    fn parse(bytes: &[u8]) -> Self {
        assert_eq!(&bytes[..8], &sxsi::MAGIC, "container magic");
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            sxsi::FORMAT_VERSION,
            "container version"
        );
        let mut sections = Vec::new();
        let mut at = 12;
        loop {
            let tag = bytes[at];
            at += 1;
            if tag == 0 {
                break;
            }
            assert_ne!(sxsi::section_name(tag), "unknown", "tag {tag}");
            let len = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
            at += 8;
            let payload = bytes[at..at + len].to_vec();
            at += len + 8; // payload + stored checksum
            sections.push((tag, payload));
        }
        assert_eq!(at, bytes.len(), "trailing bytes after the end marker");
        Self { sections }
    }

    fn payload_mut(&mut self, tag: u8) -> &mut Vec<u8> {
        &mut self
            .sections
            .iter_mut()
            .find(|(t, _)| *t == tag)
            .unwrap_or_else(|| panic!("section {tag} missing"))
            .1
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&sxsi::MAGIC);
        out.extend_from_slice(&sxsi::FORMAT_VERSION.to_le_bytes());
        for (tag, payload) in &self.sections {
            out.push(*tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend_from_slice(&sxsi::fnv1a64(payload).to_le_bytes());
        }
        out.push(0);
        out
    }
}

/// Serialized size of one [`TagTable`] over `num_tags` tags: the count
/// prefix plus, per row, a length prefix and the packed row words.
fn tag_table_size(num_tags: usize) -> usize {
    let words = num_tags.div_ceil(64);
    8 + num_tags * (8 + words * 8)
}

/// Applies `mutate` to the parsed container of `index` and returns the
/// re-framed (checksum-valid) bytes.
fn corrupt_with(index: &sxsi::SxsiIndex, mutate: impl FnOnce(&mut Container)) -> Vec<u8> {
    let mut container = Container::parse(&index.to_bytes());
    mutate(&mut container);
    container.to_bytes()
}

#[test]
fn semantic_corruption_classes_are_each_caught_with_a_distinct_code() {
    use sxsi::VerifyDepth;

    let xml = xmark::generate(&XMarkConfig { scale: 0.01, seed: 9 });
    let built = SxsiIndex::build_from_xml(xml.as_bytes()).expect("index builds");
    assert!(built.verify(VerifyDepth::Deep).is_ok(), "pristine index must verify clean");

    let num_tags = built.tree().num_tags();
    let num_texts = built.texts().num_texts();
    let table = tag_table_size(num_tags);
    // Plain-store suffix of the TEXTS payload: the offsets slice (count
    // prefix + `num_texts + 1` entries) trails the raw text bytes.
    let plain_suffix = 8 + (num_texts + 1) * 8;

    // Each class: a name (for the failure message), a checksum-valid
    // mutation, and the verifier code that must flag it.
    type Mutation = Box<dyn FnOnce(&mut Container)>;
    let classes: Vec<(&str, Mutation, &str)> = vec![
        (
            "meta element count drifted",
            Box::new(|c: &mut Container| {
                let meta = c.payload_mut(TAG_META);
                let n = u64::from_le_bytes(meta[..8].try_into().unwrap());
                meta[..8].copy_from_slice(&(n + 1).to_le_bytes());
            }),
            "element-count",
        ),
        (
            "options record the wrong succinct backends",
            Box::new(|c: &mut Container| {
                let options = c.payload_mut(TAG_OPTIONS);
                let len = options.len();
                options[len - 2] = 0; // rank: classic
                options[len - 1] = 0; // sequence: pointer
            }),
            "options-backend-mismatch",
        ),
        (
            "options record the wrong sample rate",
            Box::new(|c: &mut Container| {
                let options = c.payload_mut(TAG_OPTIONS);
                let rate = u64::from_le_bytes(options[..8].try_into().unwrap());
                options[..8].copy_from_slice(&(rate * 2).to_le_bytes());
            }),
            "options-text-mismatch",
        ),
        (
            "text collection's embedded options disagree with its FM-index",
            Box::new(|c: &mut Container| {
                let texts = c.payload_mut(TAG_TEXTS);
                let rate = u64::from_le_bytes(texts[..8].try_into().unwrap());
                texts[..8].copy_from_slice(&(rate * 2).to_le_bytes());
            }),
            "text-options-mismatch",
        ),
        (
            "plain text store byte no longer matches the BWT",
            Box::new(move |c: &mut Container| {
                let texts = c.payload_mut(TAG_TEXTS);
                let at = texts.len() - plain_suffix - 1;
                texts[at] ^= 0x01;
            }),
            "plain-text-mismatch",
        ),
        (
            "child jump table bit flipped",
            Box::new(move |c: &mut Container| {
                let tree = c.payload_mut(TAG_TREE);
                let at = tree.len() - 3 * table - 8;
                tree[at] ^= 0x01;
            }),
            "tree-child-table",
        ),
        (
            "descendant jump table bit flipped",
            Box::new(move |c: &mut Container| {
                let tree = c.payload_mut(TAG_TREE);
                let at = tree.len() - 2 * table - 8;
                tree[at] ^= 0x01;
            }),
            "tree-desc-table",
        ),
        (
            "following-sibling jump table bit flipped",
            Box::new(move |c: &mut Container| {
                let tree = c.payload_mut(TAG_TREE);
                let at = tree.len() - table - 8;
                tree[at] ^= 0x01;
            }),
            "tree-foll-sibling-table",
        ),
        (
            "following jump table bit flipped",
            Box::new(move |c: &mut Container| {
                let tree = c.payload_mut(TAG_TREE);
                let at = tree.len() - 8;
                tree[at] ^= 0x01;
            }),
            "tree-following-table",
        ),
        (
            "a text leaf moved to the root's opening parenthesis",
            Box::new(move |c: &mut Container| {
                let tree = c.payload_mut(TAG_TREE);
                // The leaf bitmap's words sit right before the four jump
                // tables; its length equals the BP length (first u64 after
                // the BP backend tag).  The load path checks the leaf
                // *count* against the text collection and that leaves sit
                // on opening parentheses, so the mutation must preserve
                // both: clear one real leaf bit and set position 0 — the
                // root's opening parenthesis, which is never a text leaf.
                let bp_len = u64::from_le_bytes(tree[1..9].try_into().unwrap()) as usize;
                let words_end = tree.len() - 4 * table;
                let words_start = words_end - bp_len.div_ceil(64) * 8;
                let at = (words_start..words_end)
                    .find(|&i| tree[i] != 0)
                    .expect("document has at least one text leaf");
                tree[at] &= tree[at] - 1; // position 0 is never set, so this clears a real leaf
                tree[words_start] |= 1;
            }),
            "tree-text-leaf",
        ),
    ];

    let mut seen_codes = Vec::new();
    for (name, mutate, code) in classes {
        let bytes = corrupt_with(&built, mutate);
        // Checksums are valid and every section is individually
        // well-formed, so the load itself must succeed...
        let loaded = SxsiIndex::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{name}: corrupted container failed to load: {e}"));
        // ...and only the semantic verifier can tell something is wrong.
        let report = loaded.verify(VerifyDepth::Deep);
        assert!(!report.is_ok(), "{name}: verifier missed the corruption");
        assert!(
            report.has_code(code),
            "{name}: expected code {code:?}, report was:\n{report}"
        );
        assert!(!seen_codes.contains(&code), "{name}: code {code:?} reused");
        seen_codes.push(code);
    }
    assert!(seen_codes.len() >= 8, "need at least eight distinct corruption classes");
}

#[test]
fn paranoid_load_rejects_semantic_corruption() {
    use sxsi::VerifyDepth;

    let xml = xmark::generate(&XMarkConfig { scale: 0.01, seed: 9 });
    let built = SxsiIndex::build_from_xml(xml.as_bytes()).expect("index builds");
    let drifted = corrupt_with(&built, |c| {
        let meta = c.payload_mut(TAG_META);
        let n = u64::from_le_bytes(meta[..8].try_into().unwrap());
        meta[..8].copy_from_slice(&(n + 1).to_le_bytes());
    });
    // The plain load accepts the drifted meta; the paranoid load does not.
    assert!(SxsiIndex::from_bytes(&drifted).is_ok());
    match SxsiIndex::load_verified(&mut &drifted[..], VerifyDepth::Quick) {
        Err(err) => assert!(err.to_string().contains("element-count"), "{err}"),
        Ok(_) => panic!("paranoid load accepted a drifted element count"),
    }
    // The pristine container passes the paranoid load at full depth.
    let pristine = built.to_bytes();
    assert!(SxsiIndex::load_verified(&mut &pristine[..], VerifyDepth::Deep).is_ok());
}
