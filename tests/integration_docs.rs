//! Documentation validity checks, run in CI's docs job:
//!
//! 1. every intra-repo markdown link in `README.md`, `ARCHITECTURE.md` and
//!    `docs/*.md` points at a file that exists, and same-repo `#anchor`
//!    fragments match a real heading of the target file;
//! 2. every XPath example in `docs/xpath-fragment.md` and
//!    `docs/search.md` (inline code spans starting with `/`) parses with
//!    the real parser, so the references cannot drift from the grammar;
//! 3. the guide's collection walkthrough and the format doc's manifest
//!    section keep naming the real commands, output shapes and issue
//!    codes (the transcripts are held to the binary by
//!    `tests/integration_collection.rs`).

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the repo root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md"), root.join("ARCHITECTURE.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    assert!(files.len() >= 5, "README, ARCHITECTURE and the three docs/ pages");
    files
}

/// Extracts `(link, target)` pairs of markdown inline links `[text](target)`
/// outside fenced code blocks.
fn markdown_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(len) = line[start..].find(')') {
                    links.push(line[start..start + len].to_string());
                    i = start + len;
                    continue;
                }
            }
            i += 1;
        }
    }
    links
}

/// GitHub-style anchor slug of a heading line.
fn slugify(heading: &str) -> String {
    let mut slug = String::new();
    for c in heading.trim().chars() {
        match c {
            'A'..='Z' => slug.push(c.to_ascii_lowercase()),
            'a'..='z' | '0'..='9' | '-' | '_' => slug.push(c),
            ' ' => slug.push('-'),
            _ => {}
        }
    }
    slug
}

fn anchors_of(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap();
    let mut anchors = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            anchors.push(slugify(line.trim_start_matches('#')));
        }
    }
    anchors
}

#[test]
fn intra_repo_links_resolve() {
    let mut checked = 0;
    for file in doc_files() {
        let text = std::fs::read_to_string(&file).unwrap();
        let dir = file.parent().unwrap().to_path_buf();
        for link in markdown_links(&text) {
            // External links are not this test's business.
            if link.starts_with("http://") || link.starts_with("https://") || link.starts_with("mailto:") {
                continue;
            }
            let (path_part, fragment) = match link.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (link.as_str(), None),
            };
            let target = if path_part.is_empty() {
                file.clone() // same-file anchor
            } else {
                dir.join(path_part)
            };
            assert!(
                target.exists(),
                "{}: broken link '{link}' (missing {})",
                file.display(),
                target.display()
            );
            if let Some(fragment) = fragment {
                let target = target.canonicalize().unwrap();
                if target.extension().is_some_and(|e| e == "md") {
                    let anchors = anchors_of(&target);
                    assert!(
                        anchors.iter().any(|a| a == fragment),
                        "{}: link '{link}' names anchor '#{fragment}' but {} only has {anchors:?}",
                        file.display(),
                        target.display()
                    );
                }
            }
            checked += 1;
        }
    }
    assert!(checked >= 20, "expected to check a meaningful number of links, got {checked}");
}

/// Inline code spans of a markdown file, outside fenced blocks.
fn inline_code_spans(text: &str) -> Vec<String> {
    let mut spans = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            spans.push(after[..close].to_string());
            rest = &after[close + 1..];
        }
    }
    spans
}

#[test]
fn fragment_reference_examples_parse() {
    let path = repo_root().join("docs/xpath-fragment.md");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut parsed = 0;
    for span in inline_code_spans(&text) {
        // Query examples are exactly the spans that start with a slash and
        // contain something beyond slashes (`/` and `//` name the
        // abbreviations themselves).
        if !span.starts_with('/') || span.chars().all(|c| c == '/') {
            continue;
        }
        sxsi_xpath::parse_query(&span)
            .unwrap_or_else(|e| panic!("docs/xpath-fragment.md example {span:?} does not parse: {e}"));
        parsed += 1;
    }
    assert!(parsed >= 25, "expected >= 25 runnable examples in the fragment reference, got {parsed}");
}

/// Every `/`-prefixed example in `docs/search.md` parses — including the
/// deliberately misplaced `ft:` form it shows (placement is a
/// compile-time check, not a parse error) — and the doc keeps its
/// load-bearing definitions: the three `ft:` modes, the tf×idf scoring
/// formula, the SLCA semantics, the placement restriction, the ranked
/// ordering, the daemon cache counters and the benchmark snapshot.  The
/// semantics themselves are held to an independent oracle by
/// `tests/integration_search.rs`; this test keeps the prose honest.
#[test]
fn search_doc_examples_parse_and_markers_hold() {
    let path = repo_root().join("docs/search.md");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut parsed = 0;
    for span in inline_code_spans(&text) {
        if !span.starts_with('/') || span.chars().all(|c| c == '/') {
            continue;
        }
        sxsi_xpath::parse_query(&span)
            .unwrap_or_else(|e| panic!("docs/search.md example {span:?} does not parse: {e}"));
        parsed += 1;
    }
    assert!(parsed >= 5, "expected >= 5 runnable ft: examples in docs/search.md, got {parsed}");
    for marker in [
        "ft:all",
        "ft:any",
        "ft:phrase",
        "tf(t, e) · ln(1 + N / df(t))",
        "smallest lowest common",
        "no covering proper descendant",
        "ties in document order",
        "top-level `and`-conjuncts of the last step's",
        "case-sensitive and byte-exact",
        "search_cache_*",
        "BENCH_pr10.json",
        "tests/integration_search.rs",
    ] {
        assert!(text.contains(marker), "docs/search.md lost its {marker:?} marker");
    }
}

/// The guide's collection walkthrough (Step 6) stays in place and keeps
/// naming the real commands and output shapes: the CLI surface
/// (`build-collection`, `verify --deep`, `--queries-file`), the
/// doc-qualified node rendering (`store1:9`), the manifest vocabulary
/// (`.sxsic`, fingerprint, `collection-*` issue codes) and the Rust
/// entry point (`CollectionExecutor`).  The transcripts themselves are
/// held to the binary by `tests/integration_collection.rs`; this test
/// keeps the prose from silently dropping the walkthrough.
#[test]
fn guide_step6_collection_walkthrough_is_present() {
    let path = repo_root().join("docs/guide.md");
    let text = std::fs::read_to_string(&path).unwrap();
    let step6 = text
        .split("## Step 6")
        .nth(1)
        .and_then(|rest| rest.split("\n## ").next())
        .expect("docs/guide.md lost its '## Step 6' collection section");
    for marker in [
        "sxsi build-collection",
        ".sxsic",
        "stores.d0.sxsi",
        "fingerprint",
        "store1:15, store2:9",
        "--limit 2 --offset 1",
        "verify --deep",
        "collection-*",
        "--queries-file",
        "empty-batch",
        "CollectionExecutor",
        "run_sequential",
        "tests/integration_collection.rs",
    ] {
        assert!(step6.contains(marker), "guide.md Step 6 lost its {marker:?} marker");
    }
    // The format doc keeps the manifest section the guide links to.
    let format = std::fs::read_to_string(repo_root().join("docs/format.md")).unwrap();
    for marker in ["SXSICOL\\0", "COLLECTION_FORMAT_VERSION", "rank_tag", "collection-*"] {
        assert!(format.contains(marker), "format.md manifest section lost its {marker:?} marker");
    }
}

/// The fragment reference lists exactly the axes the parser accepts.
#[test]
fn fragment_reference_covers_every_axis() {
    let path = repo_root().join("docs/xpath-fragment.md");
    let text = std::fs::read_to_string(&path).unwrap();
    for (name, _) in sxsi_xpath::AXIS_NAMES {
        assert!(
            text.contains(&format!("`{name}::`")),
            "docs/xpath-fragment.md misses axis `{name}::`"
        );
    }
}
