//! Serialization integration tests: the index is a *self*-index, so the
//! original document (and any subtree) must be reconstructible from it.

use sxsi::SxsiIndex;
use sxsi_datagen::{medline, xmark, MedlineConfig, XMarkConfig};

#[test]
fn whole_document_roundtrips_through_the_index() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.03, seed: 21 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let rendered = index.get_subtree(index.tree().root());
    // Re-indexing the rendered document gives the same structure and texts.
    let reindexed = SxsiIndex::build_from_xml(rendered.as_bytes()).expect("round-tripped XML parses");
    assert_eq!(reindexed.stats().num_nodes, index.stats().num_nodes);
    assert_eq!(reindexed.stats().num_texts, index.stats().num_texts);
    for query in ["//keyword", "//person", "//item", "//*"] {
        assert_eq!(reindexed.count(query).unwrap(), index.count(query).unwrap(), "{query}");
    }
}

#[test]
fn serialized_results_reparse_and_count_consistently() {
    let xml = medline::generate(&MedlineConfig { num_citations: 40, seed: 22 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let fragment = index.serialize("//AuthorList").expect("runs");
    let wrapped = format!("<root>{fragment}</root>");
    let reparsed = SxsiIndex::build_from_xml(wrapped.as_bytes()).expect("fragment parses");
    assert_eq!(
        reparsed.count("//AuthorList").unwrap(),
        index.count("//AuthorList").unwrap(),
        "serialized fragments preserve the result set"
    );
    assert_eq!(
        reparsed.count("//Author").unwrap(),
        index.count("//AuthorList/Author").unwrap(),
        "nested content survives serialization"
    );
}

#[test]
fn node_values_match_serialized_text() {
    let xml = medline::generate(&MedlineConfig { num_citations: 10, seed: 23 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    for node in index.materialize("//LastName").expect("runs") {
        let value = index.node_value(node);
        let rendered = index.get_subtree(node);
        assert_eq!(rendered, format!("<LastName>{value}</LastName>"));
    }
}

/// Deterministic pseudo-random XML document generator for the round-trip
/// property test: every document mixes plain text, predefined and numeric
/// entities, CDATA sections, attributes (single- and double-quoted) and
/// multi-byte UTF-8 in both content and attribute values.
mod docgen {
    pub struct Rng(u64);

    impl Rng {
        pub fn new(seed: u64) -> Self {
            Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
        }

        pub fn next(&mut self) -> u64 {
            // splitmix64
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }

        pub fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
            options[self.below(options.len())]
        }
    }

    const TAGS: &[&str] = &["doc", "item", "entry", "ns:el", "x-y", "héader"];
    const ATTR_NAMES: &[&str] = &["id", "name", "lang", "data-x"];
    const ATTR_VALUES: &[&str] =
        &["v1", "a &amp; b", "&quot;quoted&quot;", "düsseldorf", "&#x42;are", "日本"];
    const TEXTS: &[&str] = &[
        "plain text",
        "a &amp; b &lt;tag&gt;",
        "numeric &#65;&#x42;C refs",
        "héllo wörld — ünïcode",
        "日本語テキスト",
        "emoji 🎉 piece",
        "bare & ampersand and &unknown; entity",
        "<![CDATA[<raw> & data]]>",
        "<![CDATA[x < y > z]]>",
    ];

    /// Writes one element (recursively) into `out`.
    fn element(rng: &mut Rng, depth: usize, out: &mut String) {
        let tag = rng.pick(TAGS);
        out.push('<');
        out.push_str(tag);
        for _ in 0..rng.below(3) {
            let quote = if rng.below(2) == 0 { '"' } else { '\'' };
            out.push(' ');
            out.push_str(rng.pick(ATTR_NAMES));
            out.push('=');
            out.push(quote);
            out.push_str(rng.pick(ATTR_VALUES));
            out.push(quote);
        }
        let children = if depth >= 4 { 0 } else { rng.below(4) };
        if children == 0 && rng.below(2) == 0 {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for _ in 0..children {
            if rng.below(3) == 0 {
                element(rng, depth + 1, out);
            } else {
                out.push_str(rng.pick(TEXTS));
            }
        }
        if rng.below(2) == 0 {
            out.push_str(rng.pick(TEXTS));
        }
        out.push_str("</");
        out.push_str(tag);
        out.push('>');
    }

    /// A complete pseudo-random document for `seed`.
    pub fn document(seed: u64) -> String {
        let mut rng = Rng::new(seed);
        let mut out = String::from("<?xml version=\"1.0\"?><root>");
        for _ in 0..1 + rng.below(5) {
            element(&mut rng, 1, &mut out);
        }
        out.push_str("</root>");
        out
    }
}

mod roundtrip_proptests {
    use super::docgen;
    use proptest::prelude::*;
    use sxsi::SxsiIndex;

    /// parse → serialize_subtree → re-parse must preserve the document: the
    /// element structure, the tag set and the full text content (in document
    /// order) are unchanged, and a second serialization is byte-identical.
    ///
    /// Text-*node* counts are deliberately not compared: a CDATA section
    /// adjacent to character data parses as two text leaves but serializes
    /// as one contiguous run (CDATA is syntax, not structure), so the
    /// re-parse may legitimately merge neighbouring leaves.
    fn check_roundtrip(xml: &str) {
        let first = SxsiIndex::build_from_xml(xml.as_bytes())
            .unwrap_or_else(|e| panic!("generated document must parse: {e}\n{xml}"));
        let rendered = first.get_subtree(first.tree().root());
        let second = SxsiIndex::build_from_xml(rendered.as_bytes())
            .unwrap_or_else(|e| panic!("serialized document must re-parse: {e}\n{rendered}"));
        assert_eq!(second.stats().num_elements, first.stats().num_elements, "element count\n{xml}");
        assert_eq!(second.stats().num_tags, first.stats().num_tags, "tag count\n{xml}");
        let all_text = |idx: &SxsiIndex| -> Vec<u8> {
            (0..idx.tree().num_texts()).flat_map(|d| idx.get_text(d)).collect()
        };
        assert_eq!(
            String::from_utf8_lossy(&all_text(&second)),
            String::from_utf8_lossy(&all_text(&first)),
            "concatenated text content diverged\n{xml}"
        );
        assert_eq!(
            second.node_value(second.tree().root()),
            first.node_value(first.tree().root()),
            "root string value diverged\n{xml}"
        );
        let rendered_again = second.get_subtree(second.tree().root());
        assert_eq!(rendered_again, rendered, "serialization is not a fixpoint\n{xml}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn generated_documents_roundtrip(seed in any::<u64>()) {
            check_roundtrip(&docgen::document(seed));
        }
    }

    #[test]
    fn corpus_documents_roundtrip() {
        use sxsi_datagen::{medline, treebank, wiki, xmark};
        use sxsi_datagen::{MedlineConfig, TreebankConfig, WikiConfig, XMarkConfig};
        check_roundtrip(&xmark::generate(&XMarkConfig { scale: 0.02, seed: 31 }));
        check_roundtrip(&treebank::generate(&TreebankConfig { num_sentences: 60, seed: 31 }));
        check_roundtrip(&medline::generate(&MedlineConfig { num_citations: 25, seed: 31 }));
        check_roundtrip(&wiki::generate(&WikiConfig { num_pages: 20, seed: 31 }));
    }
}

#[test]
fn get_text_matches_document_order() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.02, seed: 24 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let tree = index.tree();
    for d in 0..tree.num_texts().min(200) {
        let node = tree.node_of_text(d).expect("text leaf exists");
        assert_eq!(tree.text_id_of_leaf(node), Some(d));
        assert!(!index.get_text(d).is_empty() || index.get_text(d).is_empty());
    }
}
