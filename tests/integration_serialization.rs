//! Serialization integration tests: the index is a *self*-index, so the
//! original document (and any subtree) must be reconstructible from it.

use sxsi::SxsiIndex;
use sxsi_datagen::{medline, xmark, MedlineConfig, XMarkConfig};

#[test]
fn whole_document_roundtrips_through_the_index() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.03, seed: 21 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let rendered = index.get_subtree(index.tree().root());
    // Re-indexing the rendered document gives the same structure and texts.
    let reindexed = SxsiIndex::build_from_xml(rendered.as_bytes()).expect("round-tripped XML parses");
    assert_eq!(reindexed.stats().num_nodes, index.stats().num_nodes);
    assert_eq!(reindexed.stats().num_texts, index.stats().num_texts);
    for query in ["//keyword", "//person", "//item", "//*"] {
        assert_eq!(reindexed.count(query).unwrap(), index.count(query).unwrap(), "{query}");
    }
}

#[test]
fn serialized_results_reparse_and_count_consistently() {
    let xml = medline::generate(&MedlineConfig { num_citations: 40, seed: 22 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let fragment = index.serialize("//AuthorList").expect("runs");
    let wrapped = format!("<root>{fragment}</root>");
    let reparsed = SxsiIndex::build_from_xml(wrapped.as_bytes()).expect("fragment parses");
    assert_eq!(
        reparsed.count("//AuthorList").unwrap(),
        index.count("//AuthorList").unwrap(),
        "serialized fragments preserve the result set"
    );
    assert_eq!(
        reparsed.count("//Author").unwrap(),
        index.count("//AuthorList/Author").unwrap(),
        "nested content survives serialization"
    );
}

#[test]
fn node_values_match_serialized_text() {
    let xml = medline::generate(&MedlineConfig { num_citations: 10, seed: 23 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    for node in index.materialize("//LastName").expect("runs") {
        let value = index.node_value(node);
        let rendered = index.get_subtree(node);
        assert_eq!(rendered, format!("<LastName>{value}</LastName>"));
    }
}

#[test]
fn get_text_matches_document_order() {
    let xml = xmark::generate(&XMarkConfig { scale: 0.02, seed: 24 });
    let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
    let tree = index.tree();
    for d in 0..tree.num_texts().min(200) {
        let node = tree.node_of_text(d).expect("text leaf exists");
        assert_eq!(tree.text_id_of_leaf(node), Some(d));
        assert!(!index.get_text(d).is_empty() || index.get_text(d).is_empty());
    }
}
