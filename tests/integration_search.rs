//! Differential suite for the keyword-search subsystem: on all four
//! corpora, the FM-index-driven search (`SxsiIndex::search`, the engine's
//! ranked `search_index`/`search_collection` wrappers) and the `ft:` XPath
//! predicates must agree with a from-first-principles oracle — an
//! independent tokenizer over extracted texts plus a DOM walk that
//! recomputes containing elements, SLCAs and the ranking formula of
//! `docs/search.md` without any index structure.  Sequential runs, the
//! parallel `BatchExecutor`, and sharded collection fan-out all go through
//! the same comparisons, and limited windows must equal slices of the
//! full runs.

use sxsi::{FtMode, FtQuery, QueryOptions, SxsiIndex};
use sxsi_baseline::NaiveEvaluator;
use sxsi_collection::Collection;
use sxsi_datagen::{
    medline, treebank, wiki, xmark, MedlineConfig, TreebankConfig, WikiConfig, XMarkConfig,
};
use sxsi_engine::search::{search_collection, search_index, RankedHit};
use sxsi_engine::{BatchExecutor, QueryBatch, QuerySpec};
use sxsi_tree::{reserved, NodeId, XmlTree};
use sxsi_xpath::parse_query;

fn corpora() -> Vec<(&'static str, String)> {
    vec![
        ("xmark", xmark::generate(&XMarkConfig { scale: 0.02, seed: 19 })),
        ("treebank", treebank::generate(&TreebankConfig { num_sentences: 50, seed: 19 })),
        ("medline", medline::generate(&MedlineConfig { num_citations: 30, seed: 19 })),
        ("wiki", wiki::generate(&WikiConfig { num_pages: 30, seed: 19 })),
    ]
}

/// The search cases the differential runs: `(mode, literals)`, chosen so
/// every mode produces hits on every corpus (the generators draw from one
/// shared common-word pool) alongside deliberate no-match and zero-token
/// cases.
fn cases() -> Vec<(FtMode, Vec<&'static str>)> {
    vec![
        (FtMode::All, vec!["the"]),
        (FtMode::All, vec!["the", "of"]),
        (FtMode::All, vec!["the", "of", "and", "a"]),
        (FtMode::All, vec!["the of"]), // one literal, two tokens
        (FtMode::All, vec!["the", "zzznope"]),
        (FtMode::Any, vec!["the"]),
        (FtMode::Any, vec!["horse", "blood", "zzznope"]),
        (FtMode::Any, vec!["zzznope"]),
        (FtMode::Phrase, vec!["of the"]),
        (FtMode::Phrase, vec!["the"]),
        (FtMode::Phrase, vec!["the zzznope of"]),
        (FtMode::All, vec![" ,;- "]), // zero tokens: matches nothing
    ]
}

/// Tokenization reimplemented from the `docs/search.md` specification
/// (maximal runs of ASCII alphanumerics and bytes `>= 0x80`), deliberately
/// not calling into `sxsi-search`.
fn oracle_tokens(bytes: &[u8]) -> Vec<Vec<u8>> {
    bytes
        .split(|&b| !(b.is_ascii_alphanumeric() || b >= 0x80))
        .filter(|run| !run.is_empty())
        .map(|run| run.to_vec())
        .collect()
}

/// One query term as the oracle sees it: per-text occurrence counts (a
/// single token for `all`/`any`, the whole token sequence for `phrase`)
/// and the number of distinct texts it occurs in.
struct OracleTerm {
    per_text: Vec<usize>,
    df: usize,
}

/// The DOM-walk oracle over one document: token lists per text, matching
/// elements by exhaustive subtree checks, SLCA by the definition (no
/// matching proper descendant), scores by the documented formula.
struct Oracle<'a> {
    tree: &'a XmlTree,
    toks: Vec<Vec<Vec<u8>>>,
}

impl<'a> Oracle<'a> {
    fn new(index: &'a SxsiIndex) -> Oracle<'a> {
        let texts = index.texts();
        let toks =
            (0..texts.num_texts()).map(|t| oracle_tokens(&texts.get_text(t))).collect();
        Oracle { tree: index.tree(), toks }
    }

    /// The query's terms: each token separately for `all`/`any`, one
    /// phrase term for `phrase`.  Mirrors the term order of the engine so
    /// score sums accumulate in the same order.
    fn terms(&self, mode: FtMode, literals: &[&str]) -> Vec<OracleTerm> {
        let tokens: Vec<Vec<u8>> =
            literals.iter().flat_map(|l| oracle_tokens(l.as_bytes())).collect();
        if tokens.is_empty() {
            return Vec::new();
        }
        let groups: Vec<Vec<Vec<u8>>> = match mode {
            FtMode::All | FtMode::Any => tokens.into_iter().map(|t| vec![t]).collect(),
            FtMode::Phrase => vec![tokens],
        };
        groups
            .into_iter()
            .map(|group| {
                let per_text: Vec<usize> = self
                    .toks
                    .iter()
                    .map(|list| {
                        if list.len() < group.len() {
                            0
                        } else {
                            list.windows(group.len()).filter(|w| *w == &group[..]).count()
                        }
                    })
                    .collect();
                let df = per_text.iter().filter(|&&c| c > 0).count();
                OracleTerm { per_text, df }
            })
            .collect()
    }

    /// Whether `node` is a proper element: not the super-root, not a
    /// `#`/`%`/`@` reserved node, and not an attribute-name node (whose
    /// parent is the `@` container).
    fn is_element(&self, node: NodeId) -> bool {
        let tag = self.tree.tag(node);
        tag != reserved::ROOT
            && tag != reserved::TEXT
            && tag != reserved::ATTRIBUTES
            && tag != reserved::ATTRIBUTE_VALUE
            && !self.tree.parent(node).is_some_and(|p| self.tree.tag(p) == reserved::ATTRIBUTES)
    }

    fn elements(&self) -> Vec<NodeId> {
        self.tree.preorder_nodes().filter(|&n| self.is_element(n)).collect()
    }

    /// Whether the element's subtree satisfies the mode over the terms.
    fn matches(&self, node: NodeId, mode: FtMode, terms: &[OracleTerm]) -> bool {
        if terms.is_empty() {
            return false;
        }
        let range = self.tree.text_ids(node);
        let present =
            |term: &OracleTerm| range.clone().any(|t| term.per_text[t] > 0);
        match mode {
            FtMode::All => terms.iter().all(present),
            FtMode::Any | FtMode::Phrase => terms.iter().any(present),
        }
    }

    /// The documented score: `Σ_t tf(t, node) · ln(1 + N / df(t))` over
    /// terms that occur at all, mirroring the engine's evaluation order so
    /// the floating-point sums agree bitwise.
    fn score(&self, node: NodeId, terms: &[OracleTerm]) -> f64 {
        let range = self.tree.text_ids(node);
        let n = self.toks.len() as f64;
        terms
            .iter()
            .filter(|term| term.df > 0)
            .map(|term| {
                let tf: usize = range.clone().map(|t| term.per_text[t]).sum();
                tf as f64 * (1.0 + n / term.df as f64).ln()
            })
            .sum()
    }

    /// Expected ranked hits: SLCA elements for `all` (matching elements
    /// with no matching proper descendant element), nearest containing
    /// elements of each matching text otherwise, scored and sorted like
    /// the engine renders them.
    fn expected_hits(&self, mode: FtMode, literals: &[&str]) -> Vec<(NodeId, f64)> {
        let terms = self.terms(mode, literals);
        if terms.is_empty() {
            return Vec::new();
        }
        let nodes: Vec<NodeId> = match mode {
            FtMode::All => {
                let matching: Vec<NodeId> = self
                    .elements()
                    .into_iter()
                    .filter(|&e| self.matches(e, mode, &terms))
                    .collect();
                matching
                    .iter()
                    .copied()
                    .filter(|&e| {
                        !matching
                            .iter()
                            .any(|&d| d != e && self.tree.is_ancestor(e, d))
                    })
                    .collect()
            }
            FtMode::Any | FtMode::Phrase => {
                // Deepest element covering each matching text.  Elements
                // containing a text form an ancestor chain, so tracking
                // the deepest cover per text in one element sweep finds
                // the unique nearest container.
                let mut deepest: Vec<Option<NodeId>> = vec![None; self.toks.len()];
                for e in self.elements() {
                    for t in self.tree.text_ids(e) {
                        let covered = terms.iter().any(|term| term.per_text[t] > 0);
                        let deeper = match deepest[t] {
                            None => true,
                            Some(d) => self.tree.depth(e) > self.tree.depth(d),
                        };
                        if covered && deeper {
                            deepest[t] = Some(e);
                        }
                    }
                }
                let mut nodes: Vec<NodeId> = deepest.into_iter().flatten().collect();
                nodes.sort_unstable();
                nodes.dedup();
                nodes
            }
        };
        let mut hits: Vec<(NodeId, f64)> =
            nodes.into_iter().map(|n| (n, self.score(n, &terms))).collect();
        hits.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        hits
    }
}

fn assert_hits_agree(
    engine: &[sxsi::SearchHit],
    expected: &[(NodeId, f64)],
    context: &str,
) {
    let engine_nodes: Vec<NodeId> = engine.iter().map(|h| h.node).collect();
    let expected_nodes: Vec<NodeId> = expected.iter().map(|&(n, _)| n).collect();
    assert_eq!(engine_nodes, expected_nodes, "node sets/order differ: {context}");
    for (h, &(_, score)) in engine.iter().zip(expected) {
        assert!(
            (h.score - score).abs() <= 1e-9 * score.abs().max(1.0),
            "score {} vs oracle {score}: {context}",
            h.score
        );
    }
}

/// `SxsiIndex::search` agrees with the DOM-walk oracle on every corpus,
/// every mode, hit sets, order and scores — and the engine's limited
/// windows are exact prefixes of the full ranking.
#[test]
fn search_results_match_dom_walk_oracle_on_all_corpora() {
    for (corpus, xml) in corpora() {
        let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
        let oracle = Oracle::new(&index);
        let mut nonempty = 0usize;
        for (mode, literals) in cases() {
            let context = format!("{corpus} ft:{}({literals:?})", mode.as_str());
            let query = FtQuery::new(mode, &literals);
            let engine = index.search(&query);
            let expected = oracle.expected_hits(mode, &literals);
            assert_hits_agree(&engine, &expected, &context);
            nonempty += usize::from(!engine.is_empty());

            // A limited window is exactly the prefix of the full run.
            let full = search_index(&index, corpus, &query, None);
            assert_eq!(full.total, engine.len(), "{context}");
            assert!(!full.truncated, "{context}");
            for limit in [0, 1, 3, engine.len(), engine.len() + 5] {
                let window = search_index(&index, corpus, &query, Some(limit));
                assert_eq!(
                    window.hits,
                    full.hits[..limit.min(full.hits.len())].to_vec(),
                    "{context} limit={limit}"
                );
                assert_eq!(window.truncated, limit < full.hits.len(), "{context} limit={limit}");
                assert_eq!(window.total, full.total, "{context} limit={limit}");
            }
        }
        // Vacuity guard: the common-word cases must actually match.
        assert!(nonempty >= 5, "only {nonempty} non-empty cases on {corpus}");
    }
}

/// The `ft:` XPath predicates agree with the naive evaluator's
/// from-first-principles `ft:` implementation — sequentially, through the
/// parallel batch executor, and for offset/limit windows.
#[test]
fn ft_predicates_match_naive_evaluator_sequentially_and_batched() {
    let queries: &[&str] = &[
        r#"//*[ft:all("the", "of")]"#,
        r#"//*[ft:any("horse", "blood")]"#,
        r#"//*[ft:phrase("of the")]"#,
        r#"//*[ft:all("the") and ft:any("horse", "blood")]"#,
        r#"//*[ft:all("the of and")]"#,
        r#"//*[ft:any("zzznope")]"#,
        r#"//*[ * and ft:all("of")]"#,
    ];
    for (corpus, xml) in corpora() {
        let index = SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds");
        let naive = NaiveEvaluator::new(index.tree(), index.texts());
        for q in queries {
            let parsed = parse_query(q).unwrap();
            let expected = naive.evaluate(&parsed);
            assert_eq!(
                index.materialize(q).unwrap(),
                expected,
                "{q} on {corpus} (sequential)"
            );
            assert_eq!(index.count(q).unwrap() as usize, expected.len(), "{q} on {corpus}");

            // Windowed runs equal slices of the oracle's full evaluation.
            let stmt = index.prepare(q).unwrap();
            for (limit, offset) in [(0u64, 0u64), (1, 0), (5, 0), (3, 2), (100, 1)] {
                let window =
                    stmt.run(&index, &QueryOptions::nodes().with_limit(limit).with_offset(offset));
                let oracle_window = naive.evaluate_window(&parsed, Some(limit), offset);
                assert_eq!(
                    window.nodes().unwrap(),
                    oracle_window,
                    "{q} on {corpus} limit={limit} offset={offset}"
                );
            }
        }
        // Misplaced ft: predicates (earlier steps, negation) are refused
        // with the documented compile error, not silently mis-evaluated.
        for q in [r#"//*[ft:all("the")]/*"#, r#"//*[not(ft:any("the"))]"#] {
            let err = index.materialize(q).unwrap_err().to_string();
            assert!(err.contains("top-level conjuncts"), "{q}: {err}");
        }
        // The parallel executor returns the same node sets as the oracle.
        let specs: Vec<QuerySpec> =
            queries.iter().map(|q| QuerySpec::nodes(*q, *q)).collect();
        let batch = QueryBatch::compile(&index, specs).expect("batch compiles");
        for threads in [1, 4] {
            let results = BatchExecutor::new(threads).run(&index, &batch);
            for (q, result) in queries.iter().zip(&results) {
                let expected = naive.evaluate(&parse_query(q).unwrap());
                assert_eq!(
                    result.result.nodes().unwrap(),
                    expected,
                    "{q} on {corpus} with {threads} threads"
                );
            }
        }
    }
}

/// Sharded collection search merges exactly the per-document oracle
/// expectations, identically at every worker count, and its limited
/// windows are slices of the full merged ranking.
#[test]
fn collection_sharded_search_matches_per_document_oracle_merge() {
    let dir = std::env::temp_dir().join(format!("sxsi-search-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let docs = corpora();
    let collection = Collection::build(
        dir.join("diff.sxsic"),
        docs.iter()
            .map(|(name, xml)| {
                (name.to_string(), SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds"))
            })
            .collect(),
    )
    .expect("collection builds");
    // Independent per-document indexes for the oracle side.
    let indexes: Vec<(&str, SxsiIndex)> = docs
        .iter()
        .map(|(name, xml)| (*name, SxsiIndex::build_from_xml(xml.as_bytes()).expect("builds")))
        .collect();

    for (mode, literals) in cases() {
        let context = format!("collection ft:{}({literals:?})", mode.as_str());
        let query = FtQuery::new(mode, &literals);
        // Expected merge: per-document oracle hits, concatenated in
        // document order, stable-sorted by score (ties keep doc order).
        let mut expected: Vec<RankedHit> = Vec::new();
        for (name, index) in &indexes {
            let oracle = Oracle::new(index);
            for (node, score) in oracle.expected_hits(mode, &literals) {
                expected.push(RankedHit {
                    doc: name.to_string(),
                    preorder: index.tree().preorder(node),
                    score,
                });
            }
        }
        expected.sort_by(|a, b| b.score.total_cmp(&a.score));

        let full = search_collection(&BatchExecutor::new(1), &collection, &query, None)
            .expect("search runs");
        assert_eq!(full.hits.len(), expected.len(), "{context}");
        for (got, want) in full.hits.iter().zip(&expected) {
            assert_eq!((got.doc.as_str(), got.preorder), (want.doc.as_str(), want.preorder), "{context}");
            assert!(
                (got.score - want.score).abs() <= 1e-9 * want.score.abs().max(1.0),
                "score {} vs oracle {}: {context}",
                got.score,
                want.score
            );
        }
        // Identical at every worker count, and windows slice the full run.
        for threads in [2, 4] {
            let again = search_collection(&BatchExecutor::new(threads), &collection, &query, None)
                .expect("search runs");
            assert_eq!(again, full, "{context} with {threads} threads");
        }
        for limit in [0, 1, 4, full.hits.len() + 3] {
            let window =
                search_collection(&BatchExecutor::new(2), &collection, &query, Some(limit))
                    .expect("search runs");
            assert_eq!(
                window.hits,
                full.hits[..limit.min(full.hits.len())].to_vec(),
                "{context} limit={limit}"
            );
            assert_eq!(window.truncated, limit < full.hits.len(), "{context} limit={limit}");
            assert_eq!(window.total, full.total, "{context} limit={limit}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
